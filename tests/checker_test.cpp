#include "core/checker.h"

#include <gtest/gtest.h>

#include "gen/fixtures.h"

namespace jinjing::core {
namespace {

using gen::Figure1;

struct CheckerModes {
  bool differential;
  smt::EncoderStrategy encoder;
};

class CheckerAllModes : public ::testing::TestWithParam<CheckerModes> {
 protected:
  CheckOptions options() const {
    CheckOptions o;
    o.use_differential = GetParam().differential;
    o.encoder = GetParam().encoder;
    return o;
  }
};

TEST_P(CheckerAllModes, NoOpUpdateIsConsistent) {
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  Checker checker{smt, f.topo, f.scope, options()};
  const auto result = checker.check({}, f.traffic);
  EXPECT_TRUE(result.consistent);
  EXPECT_EQ(result.fec_count, 5u);
  EXPECT_EQ(result.path_count, 4u);
  EXPECT_TRUE(result.violations.empty());
}

TEST_P(CheckerAllModes, RunningExampleIsInconsistent) {
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  Checker checker{smt, f.topo, f.scope, options()};
  const auto update = f.running_example_update();
  const auto result = checker.check(update, f.traffic);
  EXPECT_FALSE(result.consistent);
  ASSERT_FALSE(result.violations.empty());
  // The witness must belong to traffic 1 or 2 — the classes whose p0
  // reachability the update breaks.
  const auto& v = result.violations.front();
  EXPECT_TRUE(Figure1::traffic_class(1).contains(v.witness) ||
              Figure1::traffic_class(2).contains(v.witness))
      << to_string(v.witness);
  EXPECT_TRUE(v.decision_before);
  EXPECT_FALSE(v.decision_after);
}

TEST_P(CheckerAllModes, AllViolatedFecsFoundWithoutEarlyStop) {
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  auto o = options();
  o.stop_at_first = false;
  Checker checker{smt, f.topo, f.scope, o};
  const auto update = f.running_example_update();
  const auto result = checker.check(update, f.traffic);
  // Exactly the FECs {1} and {2,3} are broken (traffic 3 shares FEC with 2
  // but is not denied by the moved rules — the violation packet for that
  // FEC must be from 2.0.0.0/8).
  EXPECT_EQ(result.violations.size(), 2u);
}

TEST_P(CheckerAllModes, EquivalentRewriteIsConsistent) {
  // Splitting a /8 deny into two /9 denies changes the rules but not the
  // decision model: check must accept it.
  const auto f = gen::make_figure1();
  topo::AclUpdate update;
  update.emplace(topo::AclSlot{f.D2, topo::Dir::In},
                 net::Acl::parse({"deny dst 1.0.0.0/9", "deny dst 1.128.0.0/9",
                                  "deny dst 2.0.0.0/8", "permit all"}));
  smt::SmtContext smt;
  Checker checker{smt, f.topo, f.scope, options()};
  EXPECT_TRUE(checker.check(update, f.traffic).consistent);
}

TEST_P(CheckerAllModes, SubPrefixPerturbationCaught) {
  // Narrowing D2's deny from 2/8 to 2.0/9 permits 2.128.0.0/9 on p2 — an
  // inconsistency strictly inside one traffic class.
  const auto f = gen::make_figure1();
  topo::AclUpdate update;
  update.emplace(topo::AclSlot{f.D2, topo::Dir::In},
                 net::Acl::parse({"deny dst 1.0.0.0/8", "deny dst 2.0.0.0/9", "permit all"}));
  smt::SmtContext smt;
  Checker checker{smt, f.topo, f.scope, options()};
  const auto result = checker.check(update, f.traffic);
  ASSERT_FALSE(result.consistent);
  EXPECT_TRUE(net::parse_prefix("2.128.0.0/9").contains(result.violations[0].witness.dip));
}

TEST_P(CheckerAllModes, DeadRuleChangeOnUnroutedPathIsConsistent) {
  // D2's "deny 1/8" is dead in this network: traffic 1 is only routed on
  // p0, which avoids D2. Narrowing it must therefore pass the check.
  const auto f = gen::make_figure1();
  topo::AclUpdate update;
  update.emplace(topo::AclSlot{f.D2, topo::Dir::In},
                 net::Acl::parse({"deny dst 1.0.0.0/9", "deny dst 2.0.0.0/8", "permit all"}));
  smt::SmtContext smt;
  Checker checker{smt, f.topo, f.scope, options()};
  EXPECT_TRUE(checker.check(update, f.traffic).consistent);
}

TEST_P(CheckerAllModes, ChangeOutsideEnteringTrafficIgnored) {
  // Denying 99.0.0.0/8 at A1 changes no decision for the traffic that
  // actually enters the scope (1-7/8).
  const auto f = gen::make_figure1();
  topo::AclUpdate update;
  update.emplace(topo::AclSlot{f.A1, topo::Dir::In},
                 net::Acl::parse({"deny dst 99.0.0.0/8", "deny dst 6.0.0.0/8", "permit all"}));
  smt::SmtContext smt;
  Checker checker{smt, f.topo, f.scope, options()};
  EXPECT_TRUE(checker.check(update, f.traffic).consistent);
}

TEST_P(CheckerAllModes, ViolationsCarryBlame) {
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  Checker checker{smt, f.topo, f.scope, options()};
  const auto result = checker.check(f.running_example_update(), f.traffic);
  ASSERT_FALSE(result.consistent);
  const auto& v = result.violations.front();
  ASSERT_TRUE(v.changed_slot.has_value());
  // The flip happens at A1's new top denies.
  EXPECT_EQ(v.changed_slot->iface, f.A1);
  EXPECT_EQ(v.before_rule, "permit all");
  EXPECT_TRUE(v.after_rule == "deny dst 1.0.0.0/8" || v.after_rule == "deny dst 2.0.0.0/8")
      << v.after_rule;
}

INSTANTIATE_TEST_SUITE_P(
    Modes, CheckerAllModes,
    ::testing::Values(CheckerModes{true, smt::EncoderStrategy::Tree},
                      CheckerModes{true, smt::EncoderStrategy::Sequential},
                      CheckerModes{false, smt::EncoderStrategy::Tree},
                      CheckerModes{false, smt::EncoderStrategy::Sequential}),
    [](const auto& info) {
      return std::string(info.param.differential ? "Diff" : "Basic") +
             (info.param.encoder == smt::EncoderStrategy::Tree ? "Tree" : "Seq");
    });

TEST(Checker, DifferentialUsesFewerOrEqualQueriesAndAgrees) {
  const auto f = gen::make_figure1();
  const auto update = f.running_example_update();

  smt::SmtContext smt_basic;
  CheckOptions basic;
  basic.use_differential = false;
  basic.stop_at_first = false;
  Checker basic_checker{smt_basic, f.topo, f.scope, basic};
  const auto basic_result = basic_checker.check(update, f.traffic);

  smt::SmtContext smt_diff;
  CheckOptions diff;
  diff.use_differential = true;
  diff.stop_at_first = false;
  Checker diff_checker{smt_diff, f.topo, f.scope, diff};
  const auto diff_result = diff_checker.check(update, f.traffic);

  EXPECT_EQ(basic_result.consistent, diff_result.consistent);
  EXPECT_EQ(basic_result.violations.size(), diff_result.violations.size());
}

TEST(Checker, FeasiblePathsMatchPaperExample) {
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  Checker checker{smt, f.topo, f.scope};
  // [2]_FEC = traffic {2,3} travels on p0 and p2 only (§4.1 example) plus
  // no path to C3.
  const auto fec2 = Figure1::traffic_class(2) | Figure1::traffic_class(3);
  const auto feasible = checker.feasible_paths(fec2);
  ASSERT_EQ(feasible.size(), 2u);
  for (const auto pi : feasible) {
    const auto name = to_string(f.topo, checker.paths()[pi]);
    EXPECT_TRUE(name == "<A:1, A:4, D:1, D:3>" ||
                name == "<A:1, A:2, B:1, B:2, C:2, C:4, D:2, D:3>")
        << name;
  }
}

TEST(DesiredDecision, ControlVerbsAndPriority) {
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  Checker checker{smt, f.topo, f.scope};
  const auto& paths = checker.paths();
  // Find <A:1, A:3, C:1, C:3>.
  std::size_t pi = paths.size();
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (to_string(f.topo, paths[i]) == "<A:1, A:3, C:1, C:3>") pi = i;
  }
  ASSERT_LT(pi, paths.size());

  // "maintain dst 7/8" then "isolate all": 7/8 keeps its original decision,
  // everything else is denied (the paper's §6 priority example).
  lai::ControlIntent maintain7;
  maintain7.from = {f.A1};
  maintain7.to = {f.C3};
  maintain7.verb = lai::ControlVerb::Maintain;
  maintain7.header = Figure1::traffic_class(7);
  lai::ControlIntent isolate_all;
  isolate_all.from = {f.A1};
  isolate_all.to = {f.C3};
  isolate_all.verb = lai::ControlVerb::Isolate;
  isolate_all.header = net::PacketSet::all();
  const std::vector<lai::ControlIntent> controls = {maintain7, isolate_all};

  EXPECT_EQ(desired_decision(controls, paths[pi], Figure1::traffic_packet(7), true), true);
  EXPECT_EQ(desired_decision(controls, paths[pi], Figure1::traffic_packet(7), false), false);
  EXPECT_EQ(desired_decision(controls, paths[pi], Figure1::traffic_packet(5), true), false);

  // An intent that does not span the path is ignored.
  lai::ControlIntent other;
  other.from = {f.A1};
  other.to = {f.D3};
  other.verb = lai::ControlVerb::Isolate;
  other.header = net::PacketSet::all();
  EXPECT_EQ(desired_decision({other}, paths[pi], Figure1::traffic_packet(5), true), true);
}

TEST(Checker, ControlOpenDetectsUnsatisfiedIntent) {
  // Intent: open traffic 6 from A1 to C3. The no-op update leaves A1's
  // "deny 6/8" in place, so the desired reachability is violated.
  const auto f = gen::make_figure1();
  lai::ControlIntent open6;
  open6.from = {f.A1};
  open6.to = {f.C3};
  open6.verb = lai::ControlVerb::Open;
  open6.header = Figure1::traffic_class(6);

  smt::SmtContext smt;
  Checker checker{smt, f.topo, f.scope};
  const auto result = checker.check({}, f.traffic, {open6});
  ASSERT_FALSE(result.consistent);
  EXPECT_TRUE(Figure1::traffic_class(6).contains(result.violations[0].witness));

  // An update that removes the deny satisfies the intent... but must not
  // break traffic 6's isolation on the D3 paths? Traffic 6 to D3 was denied
  // by A1 before; opening only A1->C3 while keeping A1->D3 intact is
  // impossible by changing A1 alone, so a correct update adds a deny on A4.
  topo::AclUpdate update;
  update.emplace(topo::AclSlot{f.A1, topo::Dir::In}, net::Acl::permit_all());
  update.emplace(topo::AclSlot{f.A4, topo::Dir::Out},
                 net::Acl::parse({"deny dst 6.0.0.0/8", "permit all"}));
  const auto fixed = checker.check(update, f.traffic, {open6});
  EXPECT_TRUE(fixed.consistent);
}


TEST(CheckerMonolithic, AgreesWithClassifiedVerdicts) {
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  Checker checker{smt, f.topo, f.scope};

  // No-op: consistent.
  EXPECT_TRUE(checker.check_monolithic({}, f.traffic).consistent);

  // Running example: inconsistent, with a genuine routable witness.
  const auto update = f.running_example_update();
  const auto result = checker.check_monolithic(update, f.traffic);
  ASSERT_FALSE(result.consistent);
  ASSERT_EQ(result.violations.size(), 1u);
  const auto& v = result.violations.front();
  const topo::ConfigView before{f.topo};
  const topo::ConfigView after{f.topo, &update};
  EXPECT_NE(topo::path_permits(before, checker.paths()[v.path_index], v.witness),
            topo::path_permits(after, checker.paths()[v.path_index], v.witness));

  // Equivalent rewrites stay consistent.
  topo::AclUpdate rewrite;
  rewrite.emplace(topo::AclSlot{f.D2, topo::Dir::In},
                  net::Acl::parse({"deny dst 1.0.0.0/9", "deny dst 1.128.0.0/9",
                                   "deny dst 2.0.0.0/8", "permit all"}));
  EXPECT_TRUE(checker.check_monolithic(rewrite, f.traffic).consistent);
}

}  // namespace
}  // namespace jinjing::core
