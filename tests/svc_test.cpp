// The verification service: JSON wire format, versioned state store,
// scheduler policy, and a live server+client round trip on Figure 1.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <thread>
#include <vector>

#include "gen/fixtures.h"
#include "svc/client.h"
#include "svc/json.h"
#include "svc/scheduler.h"
#include "svc/server.h"
#include "svc/state_store.h"

namespace jinjing::svc {
namespace {

// ---------------------------------------------------------------- Json

TEST(JsonTest, RoundTripsScalarsAndContainers) {
  const char* cases[] = {
      "null", "true", "false", "0", "42", "-17", "3.5",
      "\"hello\"", "\"esc \\\" \\\\ \\n\"", "[]", "[1,2,3]",
      "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"e\"}}",
  };
  for (const char* text : cases) {
    const Json parsed = Json::parse(text);
    EXPECT_EQ(Json::parse(parsed.dump()).dump(), parsed.dump()) << text;
  }
}

TEST(JsonTest, DumpIsSingleLineWithIntegralNumbers) {
  Json::Object obj;
  obj.emplace("id", std::uint64_t{12345678901});
  obj.emplace("text", "line1\nline2");
  const std::string dumped = Json{std::move(obj)}.dump();
  EXPECT_EQ(dumped.find('\n'), std::string::npos);
  EXPECT_NE(dumped.find("12345678901"), std::string::npos);
  EXPECT_NE(dumped.find("\\n"), std::string::npos);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,", "tru", "\"unterminated", "{\"a\" 1}", "1 2",
                          "{\"a\":1} trailing", "\"bad \\x escape\"", "01"}) {
    EXPECT_THROW((void)Json::parse(bad), JsonError) << bad;
  }
}

TEST(JsonTest, NestingDepthIsBounded) {
  // Untrusted input: a line of nested containers must fail cleanly rather
  // than overflow the stack via unbounded recursion.
  const std::string deep_array(100000, '[');
  EXPECT_THROW((void)Json::parse(deep_array), JsonError);
  std::string deep_object;
  for (int i = 0; i < 1000; ++i) deep_object += "{\"a\":";
  EXPECT_THROW((void)Json::parse(deep_object), JsonError);

  // Reasonable nesting still parses.
  const std::string ok = std::string(100, '[') + "1" + std::string(100, ']');
  EXPECT_EQ(Json::parse(ok).dump(), ok);
}

TEST(JsonTest, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");          // é
  EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").as_string(), "\xf0\x9f\x98\x80");  // 😀
}

TEST(JsonTest, TypedAccessorsEnforceKinds) {
  EXPECT_THROW((void)Json::parse("\"x\"").as_number(), JsonError);
  EXPECT_THROW((void)Json::parse("-1").as_u64(), JsonError);
  EXPECT_THROW((void)Json::parse("1.5").as_u64(), JsonError);
  EXPECT_EQ(Json::parse("7").as_u64(), 7u);
  const Json obj = Json::parse("{\"a\":1}");
  EXPECT_EQ(obj.get("missing"), nullptr);
  EXPECT_THROW((void)obj.at("missing"), JsonError);
}

// ---------------------------------------------------------- StateStore

config::NetworkFile figure1_network() {
  auto fig = gen::make_figure1();
  config::NetworkFile network;
  network.topo = std::move(fig.topo);
  network.traffic = std::move(fig.traffic);
  return network;
}

TEST(StateStoreTest, AppliesProduceNewVersionsWithoutDisturbingOldOnes) {
  StateStore store{figure1_network()};
  EXPECT_EQ(store.head_version(), 1u);

  const SnapshotPtr v1 = store.head();
  const auto a1 = *v1->topo->find_interface("A:1");
  const topo::AclSlot slot{a1, topo::Dir::In};
  const std::size_t original_rules = v1->topo->acl(slot).size();

  topo::AclUpdate update;
  update.emplace(slot, net::Acl::permit_all());
  const SnapshotPtr v2 = store.apply_update(update);
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(store.head_version(), 2u);

  // COW: the old snapshot still sees the original ACL.
  EXPECT_EQ(v1->topo->acl(slot).size(), original_rules);
  EXPECT_NE(v2->topo->acl(slot).size(), original_rules);
  EXPECT_EQ(store.snapshot(1), v1);
}

TEST(StateStoreTest, TrimDropsOldestButPinnedSnapshotsSurvive) {
  StateStore store{figure1_network()};
  const SnapshotPtr v1 = store.head();
  for (int i = 0; i < 4; ++i) store.apply_update({});
  EXPECT_EQ(store.version_count(), 5u);

  const auto dropped = store.trim(2);
  EXPECT_EQ(dropped.size(), 3u);
  EXPECT_EQ(store.version_count(), 2u);
  EXPECT_EQ(store.snapshot(1), nullptr);
  EXPECT_NE(store.snapshot(5), nullptr);
  // The pin keeps the trimmed snapshot usable.
  EXPECT_EQ(v1->version, 1u);
  EXPECT_NE(v1->topo, nullptr);
}

TEST(StateStoreTest, ApplyIfHeadIsAnAtomicConflictCheck) {
  StateStore store{figure1_network()};
  EXPECT_EQ(store.apply_if_head(1, {})->version, 2u);
  // A plan verified against version 1 can no longer land.
  EXPECT_EQ(store.apply_if_head(1, {}), nullptr);
  EXPECT_EQ(store.head_version(), 2u);
  EXPECT_EQ(store.apply_if_head(2, {})->version, 3u);
}

TEST(StateStoreTest, HooksCannotBeInstalledAfterTheFirstApply) {
  StateStore store{figure1_network()};
  store.set_apply_hook([](const Snapshot&, const Snapshot&, const topo::AclUpdate&) {});
  (void)store.apply_update({});
  // Snapshots (and their deleters) are circulating now: swapping a hook
  // under them would race, so a late install is a hard error.
  EXPECT_THROW(store.set_release_hook([](const Snapshot&) {}), std::logic_error);
  EXPECT_THROW(store.set_apply_hook([](const Snapshot&, const Snapshot&,
                                       const topo::AclUpdate&) {}),
               std::logic_error);
}

TEST(StateStoreTest, ApplyHookSeesEveryDeltaInVersionOrder) {
  StateStore store{figure1_network()};
  std::vector<std::pair<Version, Version>> transitions;
  std::vector<std::size_t> delta_sizes;
  store.set_apply_hook(
      [&](const Snapshot& previous, const Snapshot& next, const topo::AclUpdate& update) {
        transitions.emplace_back(previous.version, next.version);
        delta_sizes.push_back(update.size());
      });

  const auto a1 = *store.head()->topo->find_interface("A:1");
  topo::AclUpdate update;
  update.emplace(topo::AclSlot{a1, topo::Dir::In}, net::Acl::permit_all());
  (void)store.apply_update(update);
  (void)store.apply_update({});
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0], (std::pair<Version, Version>{1, 2}));
  EXPECT_EQ(transitions[1], (std::pair<Version, Version>{2, 3}));
  EXPECT_EQ(delta_sizes, (std::vector<std::size_t>{1, 0}));
}

TEST(StateStoreTest, ReleaseHookFiresOnlyWhenLastPinGoesAway) {
  // Declared before the store: the hook also fires for the snapshots the
  // store still indexes when it is destroyed at end of scope.
  std::vector<Version> released;
  StateStore store{figure1_network()};
  store.set_release_hook([&](const Snapshot& snapshot) {
    EXPECT_NE(snapshot.topo, nullptr);  // topology is still alive here
    released.push_back(snapshot.version);
  });

  SnapshotPtr v1 = store.head();
  for (int i = 0; i < 3; ++i) store.apply_update({});

  // v1 and v2 leave the index; v2 is unpinned and releases immediately,
  // v1 stays alive through the pin.
  (void)store.trim(2);
  EXPECT_EQ(released, std::vector<Version>{2});

  v1.reset();
  EXPECT_EQ(released, (std::vector<Version>{2, 1}));
}

// ----------------------------------------------------------- Scheduler

SnapshotPtr dummy_snapshot() {
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->version = 1;
  return snapshot;
}

JobSpec spec_with(Priority priority, std::uint64_t deadline_ms = 0) {
  JobSpec spec;
  spec.program = "scope A:* check";
  spec.priority = priority;
  spec.deadline_ms = deadline_ms;
  return spec;
}

TEST(SchedulerTest, InteractiveDispatchesAheadOfBatchFifoWithin) {
  Scheduler scheduler{16};
  const auto snapshot = dummy_snapshot();
  const auto b1 = scheduler.submit(spec_with(Priority::Batch), snapshot).job;
  const auto b2 = scheduler.submit(spec_with(Priority::Batch), snapshot).job;
  const auto i1 = scheduler.submit(spec_with(Priority::Interactive), snapshot).job;
  const auto i2 = scheduler.submit(spec_with(Priority::Interactive), snapshot).job;
  ASSERT_TRUE(b1 && b2 && i1 && i2);

  EXPECT_EQ(scheduler.next()->id(), i1->id());
  EXPECT_EQ(scheduler.next()->id(), i2->id());
  EXPECT_EQ(scheduler.next()->id(), b1->id());
  EXPECT_EQ(scheduler.next()->id(), b2->id());
}

TEST(SchedulerTest, AdmissionControlRejectsWhenFull) {
  Scheduler scheduler{2};
  const auto snapshot = dummy_snapshot();
  EXPECT_TRUE(scheduler.submit(spec_with(Priority::Interactive), snapshot).job);
  EXPECT_TRUE(scheduler.submit(spec_with(Priority::Batch), snapshot).job);

  const auto rejected = scheduler.submit(spec_with(Priority::Interactive), snapshot);
  EXPECT_EQ(rejected.job, nullptr);
  EXPECT_EQ(rejected.error_code, 429);
  EXPECT_NE(rejected.error_message.find("queue full"), std::string::npos);

  // Dispatching one frees a slot.
  (void)scheduler.next();
  EXPECT_TRUE(scheduler.submit(spec_with(Priority::Interactive), snapshot).job);
}

TEST(SchedulerTest, DrainRejectsNewWorkAndUnblocksWorkers) {
  Scheduler scheduler{4};
  scheduler.drain();
  const auto rejected = scheduler.submit(spec_with(Priority::Interactive), dummy_snapshot());
  EXPECT_EQ(rejected.job, nullptr);
  EXPECT_EQ(rejected.error_code, 503);
  EXPECT_EQ(scheduler.next(), nullptr);  // would block forever without drain
}

TEST(SchedulerTest, CancelQueuedJobFinishesImmediately) {
  Scheduler scheduler{4};
  const auto snapshot = dummy_snapshot();
  const auto job = scheduler.submit(spec_with(Priority::Batch), snapshot).job;
  ASSERT_TRUE(job);
  EXPECT_TRUE(scheduler.cancel(job->id()));
  EXPECT_EQ(scheduler.status(job->id())->state, JobState::Cancelled);
  EXPECT_FALSE(scheduler.cancel(job->id()));  // already terminal
  EXPECT_EQ(scheduler.queued_count(), 0u);
  EXPECT_FALSE(scheduler.cancel(999));  // unknown id
}

TEST(SchedulerTest, RunningJobCancelIsCooperative) {
  Scheduler scheduler{4};
  const auto job = scheduler.submit(spec_with(Priority::Interactive), dummy_snapshot()).job;
  const auto running = scheduler.next();
  ASSERT_EQ(running->id(), job->id());
  EXPECT_TRUE(scheduler.cancel(job->id()));
  EXPECT_EQ(scheduler.status(job->id())->state, JobState::Running);  // flag only
  EXPECT_TRUE(running->cancel_requested());
  scheduler.finish(running, JobState::Cancelled, {});
  EXPECT_EQ(scheduler.status(job->id())->state, JobState::Cancelled);
}

TEST(SchedulerTest, ExpiredDeadlineFailsAtDispatch) {
  Scheduler scheduler{4};
  const auto job = scheduler.submit(spec_with(Priority::Interactive, 1), dummy_snapshot()).job;
  ASSERT_TRUE(job);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  scheduler.drain();  // so next() returns nullptr instead of blocking
  EXPECT_EQ(scheduler.next(), nullptr);
  const auto status = scheduler.status(job->id());
  EXPECT_EQ(status->state, JobState::Failed);
  EXPECT_NE(status->outcome.error.find("deadline"), std::string::npos);
}

TEST(SchedulerTest, TerminalJobsAreEvictedBeyondRetention) {
  Scheduler scheduler{8, /*retain_terminal=*/2};
  const auto snapshot = dummy_snapshot();
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    const auto job = scheduler.submit(spec_with(Priority::Interactive), snapshot).job;
    ASSERT_TRUE(job);
    ids.push_back(job->id());
    const auto running = scheduler.next();
    ASSERT_EQ(running->id(), job->id());
    scheduler.finish(running, JobState::Done, {});
  }
  // The oldest-finished job is forgotten; the two newest stay queryable.
  EXPECT_FALSE(scheduler.status(ids[0]));
  EXPECT_EQ(scheduler.find(ids[0]), nullptr);
  EXPECT_TRUE(scheduler.status(ids[1]));
  EXPECT_TRUE(scheduler.status(ids[2]));
  // Live (non-terminal) jobs are never evicted by retention.
  const auto live = scheduler.submit(spec_with(Priority::Interactive), snapshot).job;
  EXPECT_TRUE(scheduler.status(live->id()));
}

TEST(SchedulerTest, NextBatchCoalescesSameKeyJobsInSubmissionOrder) {
  Scheduler scheduler{16};
  const auto snapshot = dummy_snapshot();
  const auto make = [&](std::uint64_t key, Priority priority = Priority::Interactive) {
    JobSpec spec = spec_with(priority);
    spec.coalesce_key = key;
    return scheduler.submit(std::move(spec), snapshot).job;
  };
  const auto a = make(7);
  const auto b = make(0);                   // never coalesced
  const auto c = make(7);
  const auto d = make(7, Priority::Batch);  // same key, other priority class
  const auto e = make(7);

  const auto batch = scheduler.next_batch(8);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0]->id(), a->id());
  EXPECT_EQ(batch[1]->id(), c->id());
  EXPECT_EQ(batch[2]->id(), e->id());
  for (const auto& job : batch) {
    EXPECT_EQ(scheduler.status(job->id())->state, JobState::Running);
  }
  // The jobs left behind keep their relative order and their priorities.
  EXPECT_EQ(scheduler.next()->id(), b->id());
  EXPECT_EQ(scheduler.next()->id(), d->id());
}

TEST(SchedulerTest, NextBatchHonorsMaxAndZeroKeyDispatchesAlone) {
  Scheduler scheduler{16};
  const auto snapshot = dummy_snapshot();
  const auto make = [&](std::uint64_t key) {
    JobSpec spec = spec_with(Priority::Interactive);
    spec.coalesce_key = key;
    return scheduler.submit(std::move(spec), snapshot).job;
  };
  (void)make(5);
  (void)make(5);
  const auto third = make(5);
  EXPECT_EQ(scheduler.next_batch(2).size(), 2u);  // max caps the unit
  EXPECT_EQ(scheduler.next_batch(2).front()->id(), third->id());

  (void)make(0);
  (void)make(0);
  EXPECT_EQ(scheduler.next_batch(8).size(), 1u);  // key 0 never coalesces
  EXPECT_EQ(scheduler.next_batch(8).size(), 1u);
}

TEST(SchedulerTest, NextBatchFinishesCancelledAndExpiredCandidatesInline) {
  Scheduler scheduler{16};
  const auto snapshot = dummy_snapshot();
  const auto make = [&](std::uint64_t deadline_ms = 0) {
    JobSpec spec = spec_with(Priority::Interactive, deadline_ms);
    spec.coalesce_key = 3;
    return scheduler.submit(std::move(spec), snapshot).job;
  };
  const auto lead = make();
  const auto cancelled = make();
  const auto expired = make(1);
  const auto good = make();
  cancelled->request_cancel();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  const auto batch = scheduler.next_batch(8);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0]->id(), lead->id());
  EXPECT_EQ(batch[1]->id(), good->id());
  EXPECT_EQ(scheduler.status(cancelled->id())->state, JobState::Cancelled);
  const auto expired_status = scheduler.status(expired->id());
  EXPECT_EQ(expired_status->state, JobState::Failed);
  EXPECT_NE(expired_status->outcome.error.find("deadline exceeded while queued"),
            std::string::npos);
}

TEST(SchedulerTest, RetentionEvictionReleasesJobsOutsideTheLock) {
  std::atomic<bool> probe_live{true};
  std::atomic<int> releases{0};
  Scheduler scheduler{8, /*retain_terminal=*/1};
  const auto make_snapshot = [&] {
    auto* raw = new Snapshot;
    raw->version = 1;
    return SnapshotPtr(raw, [&](Snapshot* s) {
      // Simulates the store's release hook firing on the last snapshot pin:
      // it re-enters the scheduler, so eviction must hand the dropped
      // JobPtrs out of the mutex before destroying them (a regression
      // deadlocks right here).
      if (probe_live.load()) (void)scheduler.queued_count();
      ++releases;
      delete s;
    });
  };
  for (int i = 0; i < 3; ++i) {
    const auto job = scheduler.submit(spec_with(Priority::Interactive), make_snapshot()).job;
    ASSERT_TRUE(job);
    scheduler.finish(scheduler.next(), JobState::Done, {});
  }
  EXPECT_EQ(releases.load(), 2);  // jobs 1 and 2 evicted beyond retention
  probe_live.store(false);        // the last job dies with the scheduler
}

TEST(SchedulerTest, WaitTimesOutOnRunningJobAndReturnsOnFinish) {
  Scheduler scheduler{4};
  const auto job = scheduler.submit(spec_with(Priority::Interactive), dummy_snapshot()).job;
  (void)scheduler.next();
  EXPECT_FALSE(scheduler.wait(job->id(), std::chrono::milliseconds(20)));

  std::thread finisher{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    JobOutcome outcome;
    outcome.success = true;
    scheduler.finish(job, JobState::Done, std::move(outcome));
  }};
  const auto status = scheduler.wait(job->id());
  finisher.join();
  ASSERT_TRUE(status);
  EXPECT_EQ(status->state, JobState::Done);
  EXPECT_TRUE(status->outcome.success);
  EXPECT_FALSE(scheduler.wait(999));  // unknown id
}

// -------------------------------------------------------- Server + Client

constexpr const char* kCheckOnly = "scope A:*, B:*, C:*, D:*\ncheck\n";
constexpr const char* kBreakingModify =
    "scope A:*, B:*, C:*, D:*\nallow A:*\nmodify A:1-in to permit_all\ncheck\n";
constexpr const char* kCheckFix =
    "scope A:*, B:*, C:*, D:*\n"
    "allow A:*, B:*\n"
    "modify A:1-in to A1_new, A:3-out to A3_new, C:1-in to permit_all, "
    "D:2-in to permit_all\ncheck\nfix\n";
constexpr const char* kA1New =
    "deny dst 1.0.0.0/8\ndeny dst 2.0.0.0/8\ndeny dst 6.0.0.0/8\npermit all\n";
constexpr const char* kA3New = "deny dst 7.0.0.0/8\npermit all\n";

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = (std::filesystem::temp_directory_path() /
                    ("jinjing_svc_test_" + std::to_string(::getpid()) + ".sock"))
                       .string();
    ServerOptions options;
    options.socket_path = socket_path_;
    options.queue_depth = 16;
    options.workers = 2;
    options.keep_versions = 4;
    server_ = std::make_unique<Server>(figure1_network(), options);
    server_->start();
  }

  void TearDown() override {
    if (server_) {
      server_->request_shutdown();
      server_->wait();
      server_.reset();
    }
    std::filesystem::remove(socket_path_);
  }

  Json submit_and_wait(Client& client, Json::Object params) {
    const Json submitted = client.call("submit", Json{std::move(params)});
    Json::Object wait;
    wait.emplace("job", submitted.at("job").as_u64());
    return client.call("result", Json{std::move(wait)});
  }

  std::string socket_path_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, ConsistentCheckSucceeds) {
  Client client{socket_path_};
  Json::Object params;
  params.emplace("program", kCheckOnly);
  const Json result = submit_and_wait(client, std::move(params));
  EXPECT_TRUE(result.at("done").as_bool());
  const Json& status = result.at("status");
  EXPECT_EQ(status.at("state").as_string(), "done");
  EXPECT_TRUE(status.at("outcome").at("success").as_bool());
  EXPECT_EQ(status.at("snapshot").as_u64(), 1u);
}

TEST_F(ServerTest, BreakingModifyIsInconsistentAndNotApplicable) {
  Client client{socket_path_};
  Json::Object params;
  params.emplace("program", kBreakingModify);
  const Json result = submit_and_wait(client, std::move(params));
  const Json& status = result.at("status");
  EXPECT_EQ(status.at("state").as_string(), "done");
  EXPECT_FALSE(status.at("outcome").at("success").as_bool());

  // A failed verification is not a deployable plan.
  Json::Object apply;
  apply.emplace("job", status.at("job").as_u64());
  try {
    (void)client.call("apply", Json{std::move(apply)});
    FAIL() << "apply of a failed job must be rejected";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), 409);
  }
}

TEST_F(ServerTest, CheckFixProducesPlanAndApplyAdvancesHead) {
  Client client{socket_path_};
  Json::Object params;
  params.emplace("program", kCheckFix);
  Json::Object acls;
  acls.emplace("A1_new", kA1New);
  acls.emplace("A3_new", kA3New);
  params.emplace("acls", Json{std::move(acls)});
  const Json result = submit_and_wait(client, std::move(params));
  const Json& status = result.at("status");
  ASSERT_EQ(status.at("state").as_string(), "done") << status.dump();
  EXPECT_EQ(status.at("priority").as_string(), "batch");  // fix => batch
  const Json& outcome = status.at("outcome");
  ASSERT_TRUE(outcome.at("success").as_bool());
  EXPECT_NE(outcome.at("plan").as_string().find("deny dst 6.0.0.0/8"), std::string::npos);

  Json::Object apply;
  apply.emplace("job", status.at("job").as_u64());
  const Json applied = client.call("apply", Json{std::move(apply)});
  EXPECT_EQ(applied.at("version").as_u64(), 2u);
  EXPECT_EQ(server_->store().head_version(), 2u);

  // The repaired network is consistent under a fresh check on the new head.
  Json::Object recheck;
  recheck.emplace("program", kCheckOnly);
  const Json rechecked = submit_and_wait(client, std::move(recheck));
  EXPECT_EQ(rechecked.at("status").at("snapshot").as_u64(), 2u);
  EXPECT_TRUE(rechecked.at("status").at("outcome").at("success").as_bool());
}

TEST_F(ServerTest, StaleSnapshotApplyIsRejected) {
  Client client{socket_path_};
  Json::Object first;
  first.emplace("program", kCheckOnly);
  const Json job1 = submit_and_wait(client, std::move(first));
  Json::Object second;
  second.emplace("program", kCheckOnly);
  const Json job2 = submit_and_wait(client, std::move(second));

  Json::Object apply1;
  apply1.emplace("job", job1.at("status").at("job").as_u64());
  (void)client.call("apply", Json{std::move(apply1)});  // head -> 2

  // job2 verified version 1; head moved on.
  Json::Object apply2;
  apply2.emplace("job", job2.at("status").at("job").as_u64());
  try {
    (void)client.call("apply", Json{std::move(apply2)});
    FAIL() << "stale apply must conflict";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), 409);
  }
}

TEST_F(ServerTest, ConcurrentAppliesAdmitExactlyOneWinner) {
  // Two successful jobs verified against the same head race their applies;
  // the check-and-advance is atomic, so exactly one lands and the other
  // conflicts (head never silently absorbs a plan verified elsewhere).
  std::vector<std::uint64_t> jobs;
  {
    Client client{socket_path_};
    for (int i = 0; i < 2; ++i) {
      Json::Object params;
      params.emplace("program", kCheckFix);
      Json::Object acls;
      acls.emplace("A1_new", kA1New);
      acls.emplace("A3_new", kA3New);
      params.emplace("acls", Json{std::move(acls)});
      const Json result = submit_and_wait(client, std::move(params));
      ASSERT_TRUE(result.at("status").at("outcome").at("success").as_bool());
      jobs.push_back(result.at("status").at("job").as_u64());
    }
  }

  std::atomic<int> applied{0};
  std::atomic<int> conflicted{0};
  std::vector<std::thread> threads;
  for (const std::uint64_t job : jobs) {
    threads.emplace_back([&, job] {
      Client client{socket_path_};
      Json::Object params;
      params.emplace("job", job);
      try {
        (void)client.call("apply", Json{std::move(params)});
        ++applied;
      } catch (const RpcError& e) {
        EXPECT_EQ(e.code(), 409);
        ++conflicted;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(applied.load(), 1);
  EXPECT_EQ(conflicted.load(), 1);
  EXPECT_EQ(server_->store().head_version(), 2u);
}

TEST_F(ServerTest, ErrorsCarryRpcCodes) {
  Client client{socket_path_};
  try {
    (void)client.call("frobnicate");
    FAIL();
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), -32601);
  }
  try {
    Json::Object params;
    params.emplace("job", 12345);
    (void)client.call("status", Json{std::move(params)});
    FAIL();
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), 404);
  }
  try {
    Json::Object params;
    params.emplace("program", "scope A:* syntax error here");
    (void)client.call("submit", Json{std::move(params)});
    FAIL();
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), -32602);
  }
  try {
    Json::Object params;
    params.emplace("program", kCheckOnly);
    params.emplace("snapshot", 77);
    (void)client.call("submit", Json{std::move(params)});
    FAIL();
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), 404);  // unknown snapshot version
  }
}

TEST_F(ServerTest, MetricsExportIsLive) {
  Client client{socket_path_};
  Json::Object params;
  params.emplace("program", kCheckOnly);
  (void)submit_and_wait(client, std::move(params));

  const Json metrics = client.call("metrics");
  const std::string& text = metrics.at("prometheus").as_string();
  EXPECT_NE(text.find("# TYPE jinjing_svc_jobs_submitted_total counter"), std::string::npos);
  EXPECT_EQ(text.find("jinjing_svc_jobs_submitted_total 0\n"), std::string::npos) << text;
  EXPECT_NE(text.find("jinjing_svc_head_version 1"), std::string::npos);
  EXPECT_NE(text.find("jinjing_svc_queue_wait_micros_bucket"), std::string::npos);
}

TEST_F(ServerTest, ShutdownDrainsGracefully) {
  Client client{socket_path_};
  Json::Object params;
  params.emplace("program", kCheckOnly);
  const Json submitted = client.call("submit", Json{std::move(params)});
  const std::uint64_t job = submitted.at("job").as_u64();

  const Json reply = client.call("shutdown");
  EXPECT_TRUE(reply.at("draining").as_bool());

  // Admission is closed but the admitted job still finishes.
  try {
    Json::Object again;
    again.emplace("program", kCheckOnly);
    (void)client.call("submit", Json{std::move(again)});
    FAIL();
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), 503);
  }

  Json::Object wait;
  wait.emplace("job", job);
  const Json result = client.call("result", Json{std::move(wait)});
  EXPECT_EQ(result.at("status").at("state").as_string(), "done");

  server_->wait();
  server_.reset();
  EXPECT_THROW(Client{socket_path_}, ClientError);
}

TEST_F(ServerTest, ConcurrentClientsGetIndependentAnswers) {
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::vector<std::string> states(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client{socket_path_};
      Json::Object params;
      params.emplace("program", i % 2 == 0 ? kCheckOnly : kBreakingModify);
      const Json result = submit_and_wait(client, std::move(params));
      states[static_cast<std::size_t>(i)] =
          result.at("status").at("outcome").at("success").as_bool() ? "ok" : "fail";
    });
  }
  for (auto& thread : threads) thread.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(states[static_cast<std::size_t>(i)], i % 2 == 0 ? "ok" : "fail") << i;
  }
}

// ------------------------------------- Incremental cross-version serving

/// A server with custom options on its own socket, torn down on scope exit.
struct ScopedServer {
  std::string socket;
  std::unique_ptr<Server> server;

  explicit ScopedServer(ServerOptions options, const std::string& tag) {
    socket = (std::filesystem::temp_directory_path() /
              ("jinjing_svc_inc_" + tag + "_" + std::to_string(::getpid()) + ".sock"))
                 .string();
    options.socket_path = socket;
    server = std::make_unique<Server>(figure1_network(), options);
    server->start();
  }

  ~ScopedServer() {
    server->request_shutdown();
    server->wait();
    server.reset();
    std::filesystem::remove(socket);
  }
};

Json run_program(Client& client, const char* program) {
  Json::Object params;
  params.emplace("program", program);
  const Json submitted = client.call("submit", Json{std::move(params)});
  Json::Object wait;
  wait.emplace("job", submitted.at("job").as_u64());
  return client.call("result", Json{std::move(wait)});
}

std::uint64_t delta_cache_stat(Client& client, const std::string& field) {
  const Json info = client.call("info");
  return info.at("delta_cache").at(field).as_u64();
}

TEST_F(ServerTest, CheckOnlyJobsReuseTheCachedPlanAcrossApplies) {
  Client client{socket_path_};
  ASSERT_NE(server_->incremental(), nullptr);

  // First check-only job: delta-cache miss, plan built and installed.
  Json first = run_program(client, kCheckOnly);
  EXPECT_TRUE(first.at("status").at("outcome").at("success").as_bool());
  EXPECT_GE(delta_cache_stat(client, "misses"), 1u);
  EXPECT_GE(delta_cache_stat(client, "cached_plans"), 1u);

  // Second identical job: served from the cached entry.
  Json second = run_program(client, kCheckOnly);
  EXPECT_TRUE(second.at("status").at("outcome").at("success").as_bool());
  EXPECT_GE(delta_cache_stat(client, "hits"), 1u);

  // An apply rebases the entry to the new version; the next check hits
  // without rebuilding, and verdicts stay correct on the new head.
  const auto c1 = *server_->store().head()->topo->find_interface("C:1");
  topo::AclUpdate update;
  update.emplace(topo::AclSlot{c1, topo::Dir::In}, net::Acl::permit_all());
  (void)server_->store().apply_update(update);

  const std::uint64_t hits_before = delta_cache_stat(client, "hits");
  Json third = run_program(client, kCheckOnly);
  EXPECT_EQ(third.at("status").at("snapshot").as_u64(), 2u);
  EXPECT_TRUE(third.at("status").at("outcome").at("success").as_bool());
  EXPECT_GE(delta_cache_stat(client, "rebases"), 1u);
  EXPECT_GT(delta_cache_stat(client, "hits"), hits_before);

  // A breaking modify through the incremental path still finds violations.
  Json breaking = run_program(client, kBreakingModify);
  EXPECT_FALSE(breaking.at("status").at("outcome").at("success").as_bool());

  const Json metrics = client.call("metrics");
  const std::string& text = metrics.at("prometheus").as_string();
  EXPECT_NE(text.find("jinjing_delta_cache_hits_total"), std::string::npos);
  EXPECT_NE(text.find("jinjing_svc_cached_plans"), std::string::npos);
  EXPECT_NE(text.find("jinjing_svc_cached_obligations_live"), std::string::npos);
}

TEST(ServerIncrementalTest, ChainBudgetExhaustionFallsBackToFullRebuild) {
  ServerOptions options;
  options.workers = 1;
  options.max_delta_chain = 1;
  ScopedServer scoped{options, "chain"};
  Client client{scoped.socket};

  EXPECT_TRUE(run_program(client, kCheckOnly).at("status").at("outcome")
                  .at("success").as_bool());  // miss + install at v1
  (void)scoped.server->store().apply_update({});  // rebase to v2 (chain 1)
  (void)scoped.server->store().apply_update({});  // over budget: entry dropped

  // The next job pays a full rebuild (a miss, not a hit) — and still
  // answers correctly.
  const std::uint64_t misses_before = delta_cache_stat(client, "misses");
  const Json result = run_program(client, kCheckOnly);
  EXPECT_EQ(result.at("status").at("snapshot").as_u64(), 3u);
  EXPECT_TRUE(result.at("status").at("outcome").at("success").as_bool());
  EXPECT_GE(delta_cache_stat(client, "fallbacks"), 1u);
  EXPECT_GT(delta_cache_stat(client, "misses"), misses_before);
}

TEST(ServerIncrementalTest, RetiredBaseVersionDropsItsCacheEntries) {
  ServerOptions options;
  options.workers = 1;
  options.keep_versions = 1;
  options.retain_jobs = 1;
  ScopedServer scoped{options, "retire"};
  Client client{scoped.socket};

  EXPECT_TRUE(run_program(client, kCheckOnly).at("status").at("outcome")
                  .at("success").as_bool());  // install at v1
  (void)scoped.server->store().apply_update({});  // entries now at v1 and v2
  EXPECT_GE(delta_cache_stat(client, "cached_plans"), 2u);
  (void)scoped.server->store().trim(1);  // v1 leaves the index, job 1 pins it

  // Finishing another job evicts job 1 from retention, releasing the last
  // pin on v1 — the release hook must retire v1's delta-cache entries.
  EXPECT_TRUE(run_program(client, kCheckOnly).at("status").at("outcome")
                  .at("success").as_bool());
  // Bounded poll for the asynchronous release hook; generous cap so a
  // loaded CI machine never turns scheduling jitter into a failure.
  for (int i = 0; i < 500 && delta_cache_stat(client, "cached_plans") > 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(delta_cache_stat(client, "cached_plans"), 1u);
}

// --------------------------------------- Batched + sharded execution

/// A pure-check workload: the program plus the ACL bodies it references.
struct CheckProgram {
  std::string program;
  std::vector<std::pair<std::string, std::string>> acls;
};

std::uint64_t submit_program(Client& client, const CheckProgram& p,
                             std::optional<std::uint64_t> deadline_ms = {}) {
  Json::Object params;
  params.emplace("program", p.program);
  if (!p.acls.empty()) {
    Json::Object acls;
    for (const auto& [name, body] : p.acls) acls.emplace(name, body);
    params.emplace("acls", Json{std::move(acls)});
  }
  if (deadline_ms) params.emplace("deadline_ms", *deadline_ms);
  return client.call("submit", Json{std::move(params)}).at("job").as_u64();
}

Json wait_result(Client& client, std::uint64_t job) {
  Json::Object wait;
  wait.emplace("job", job);
  wait.emplace("timeout_ms", std::uint64_t{300000});
  return client.call("result", Json{std::move(wait)});
}

/// Blocks until the dispatcher has picked up the blocker job — the window
/// where everything submitted next piles up behind it and coalesces into
/// one dispatch unit. A condition wait on the scheduler (Queued -> Running
/// is broadcast), not a sleep poll.
void wait_until_dispatcher_busy(Server& server, std::uint64_t blocker_id) {
  const auto status =
      server.scheduler().wait_started(blocker_id, std::chrono::minutes(5));
  ASSERT_TRUE(status.has_value()) << "dispatcher never picked up the blocker job";
}

std::uint64_t prometheus_counter(const std::string& text, const std::string& name) {
  // Anchor at a line start so the "# TYPE <name> counter" comment never matches.
  const std::string needle = "\n" + name + " ";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return 0;
  return std::stoull(text.substr(pos + needle.size()));
}

/// The four verdict shapes every coalesced batch must reproduce exactly:
/// consistent no-op, the paper's violation, an equivalent rule split, and a
/// violation strictly inside one traffic class.
std::vector<CheckProgram> equivalence_matrix() {
  return {
      {kCheckOnly, {}},
      {kBreakingModify, {}},
      {"scope A:*, B:*, C:*, D:*\nallow D:*\nmodify D:2-in to D2_split\ncheck\n",
       {{"D2_split",
         "deny dst 1.0.0.0/9\ndeny dst 1.128.0.0/9\ndeny dst 2.0.0.0/8\npermit all\n"}}},
      {"scope A:*, B:*, C:*, D:*\nallow D:*\nmodify D:2-in to D2_narrow\ncheck\n",
       {{"D2_narrow", "deny dst 1.0.0.0/8\ndeny dst 2.0.0.0/9\npermit all\n"}}},
  };
}

class BatchedServerEquivalence : public ::testing::TestWithParam<topo::SetBackend> {
 protected:
  static ServerOptions with_backend(unsigned workers, std::size_t coalesce) {
    ServerOptions options;
    options.workers = workers;
    options.coalesce = coalesce;
    // These tests park a fix job in the dispatcher so the checks behind it
    // provably coalesce; the overlap slot would run the fix on the side and
    // drain the queue one by one instead. Overlap has its own test below.
    options.overlap = false;
    options.engine.check.set_backend = GetParam();
    options.engine.fix.check.set_backend = GetParam();
    return options;
  }
  static std::string tag(const char* prefix) {
    return std::string(prefix) +
           (GetParam() == topo::SetBackend::Bdd ? "_bdd" : "_hypercube");
  }
};

TEST_P(BatchedServerEquivalence, CoalescedBatchMatchesSequentialOracle) {
  // The batched server coalesces everything queued behind a slow fix job;
  // the oracle server (workers=1, coalesce=1) runs the same programs one
  // engine at a time. A cancellation lands mid-batch, and an apply advances
  // the head between coalesce and dispatch — client-visible outcomes must
  // still match the oracle job for job.
  // The last-constructed server's StatsRegistry is the process-global sink,
  // so the batched server comes second: its metrics endpoint then reflects
  // everything both servers record, and the oracle (coalesce=1) never
  // touches the batch counters.
  ScopedServer oracle{with_backend(1, 1), tag("oracle")};
  ScopedServer batched{with_backend(2, 16), tag("batched")};
  Client batched_client{batched.socket};
  Client oracle_client{oracle.socket};

  CheckProgram blocker{kCheckFix, {{"A1_new", kA1New}, {"A3_new", kA3New}}};
  const std::uint64_t blocker_id = submit_program(batched_client, blocker);
  wait_until_dispatcher_busy(*batched.server, blocker_id);

  const auto matrix = equivalence_matrix();
  std::vector<std::uint64_t> batched_ids;
  for (const auto& p : matrix) batched_ids.push_back(submit_program(batched_client, p));
  // A batchmate cancelled while the unit is queued must come back
  // cancelled without disturbing the others.
  const std::uint64_t doomed = submit_program(batched_client, {kCheckOnly, {}});
  {
    Json::Object cancel;
    cancel.emplace("job", doomed);
    EXPECT_TRUE(batched_client.call("cancel", Json{std::move(cancel)}).at("cancelled").as_bool());
  }
  // An apply landing between coalesce and dispatch: the queued jobs keep
  // their pinned snapshot and must verify against it, not the new head.
  (void)batched.server->store().apply_update({});

  EXPECT_TRUE(wait_result(batched_client, blocker_id)
                  .at("status").at("outcome").at("success").as_bool());
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    const Json batched_result = wait_result(batched_client, batched_ids[i]);
    const Json oracle_result =
        wait_result(oracle_client, submit_program(oracle_client, matrix[i]));
    const Json& bs = batched_result.at("status");
    const Json& os = oracle_result.at("status");
    EXPECT_EQ(bs.at("state").as_string(), "done") << bs.dump();
    EXPECT_EQ(bs.at("snapshot").as_u64(), 1u) << "must verify the pinned snapshot";
    // The entire client-visible outcome object — success, plan text, and
    // the per-command consistent bits — must be byte-identical.
    EXPECT_EQ(bs.at("outcome").dump(), os.at("outcome").dump()) << "program " << i;
  }
  EXPECT_EQ(wait_result(batched_client, doomed).at("status").at("state").as_string(),
            "cancelled");

  // A job submitted after the apply verifies the new head.
  const Json fresh =
      wait_result(batched_client, submit_program(batched_client, {kCheckOnly, {}}));
  EXPECT_EQ(fresh.at("status").at("snapshot").as_u64(), 2u);
  EXPECT_TRUE(fresh.at("status").at("outcome").at("success").as_bool());

  // The unit really was coalesced (the five checks queued behind the fix).
  const std::string metrics =
      batched_client.call("metrics").at("prometheus").as_string();
  EXPECT_GE(prometheus_counter(metrics, "jinjing_svc_batch_jobs_coalesced_total"), 2u)
      << metrics;
  EXPECT_GE(prometheus_counter(metrics, "jinjing_svc_batch_dispatches_total"), 1u);
}

INSTANTIATE_TEST_SUITE_P(Backends, BatchedServerEquivalence,
                         ::testing::Values(topo::SetBackend::Hypercube,
                                           topo::SetBackend::Bdd));

TEST(BatchedServerTest, DeadlineInsideCoalescedBatchGetsQueuedDiagnostic) {
  // A job whose deadline expires while it waits behind a slow blocker —
  // whether caught at dispatch or inside the coalesced unit — must fail
  // with the queued-deadline diagnostic, never a solver-timeout one.
  ServerOptions options;
  options.workers = 1;
  options.coalesce = 16;
  options.overlap = false;  // the blocker must hold the dispatch loop itself
  ScopedServer scoped{options, "deadline_batch"};
  Client client{scoped.socket};

  CheckProgram blocker{kCheckFix, {{"A1_new", kA1New}, {"A3_new", kA3New}}};
  const std::uint64_t blocker_id = submit_program(client, blocker);
  wait_until_dispatcher_busy(*scoped.server, blocker_id);

  const std::uint64_t doomed =
      submit_program(client, {kCheckOnly, {}}, /*deadline_ms=*/std::uint64_t{1});
  const std::uint64_t healthy = submit_program(client, {kCheckOnly, {}});

  const Json doomed_status = wait_result(client, doomed).at("status");
  EXPECT_EQ(doomed_status.at("state").as_string(), "failed") << doomed_status.dump();
  const std::string error = doomed_status.at("outcome").at("error").as_string();
  EXPECT_NE(error.find("deadline exceeded while queued"), std::string::npos) << error;
  EXPECT_EQ(error.find("solver timeout"), std::string::npos) << error;

  // The expired batchmate never poisons the rest of the unit.
  const Json healthy_status = wait_result(client, healthy).at("status");
  EXPECT_EQ(healthy_status.at("state").as_string(), "done");
  EXPECT_TRUE(healthy_status.at("outcome").at("success").as_bool());
}

TEST(BatchedServerTest, CoalesceOneDisablesBatchingEntirely) {
  ServerOptions options;
  options.workers = 2;
  options.coalesce = 1;
  options.overlap = false;  // serialize: the blocker must precede the checks
  ScopedServer scoped{options, "no_batch"};
  Client client{scoped.socket};

  CheckProgram blocker{kCheckFix, {{"A1_new", kA1New}, {"A3_new", kA3New}}};
  const std::uint64_t blocker_id = submit_program(client, blocker);
  wait_until_dispatcher_busy(*scoped.server, blocker_id);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(submit_program(client, {kCheckOnly, {}}));
  for (const std::uint64_t id : ids) {
    EXPECT_TRUE(wait_result(client, id).at("status").at("outcome").at("success").as_bool());
  }
  const std::string metrics = client.call("metrics").at("prometheus").as_string();
  EXPECT_EQ(prometheus_counter(metrics, "jinjing_svc_batch_jobs_coalesced_total"), 0u);
  EXPECT_EQ(prometheus_counter(metrics, "jinjing_svc_batch_dispatches_total"), 0u);
}

// ------------------------------------------------- Leases & snapshot pins

TEST(LeaseTest, LeaseRenewReleaseVerbsRoundTrip) {
  ServerOptions options;
  options.workers = 1;
  ScopedServer scoped{options, "lease_verbs"};
  Client client{scoped.socket};

  // Default lease: the head version, the server's maximum window.
  const Json granted = client.call("lease");
  const std::uint64_t lease = granted.at("lease").as_u64();
  EXPECT_EQ(granted.at("version").as_u64(), 1u);
  EXPECT_EQ(granted.at("lease_ms").as_u64(), options.max_lease_ms);
  EXPECT_EQ(scoped.server->store().lease_count(), 1u);

  // A requested window past the cap is clamped, never granted.
  Json::Object big;
  big.emplace("lease_ms", std::uint64_t{1} << 40);
  const Json clamped = client.call("lease", Json{std::move(big)});
  EXPECT_EQ(clamped.at("lease_ms").as_u64(), options.max_lease_ms);

  Json::Object renew;
  renew.emplace("lease", lease);
  renew.emplace("lease_ms", std::uint64_t{1000});
  EXPECT_TRUE(client.call("renew", Json{std::move(renew)}).at("renewed").as_bool());

  Json::Object release;
  release.emplace("lease", lease);
  EXPECT_TRUE(client.call("release", Json{std::move(release)}).at("released").as_bool());
  // Releasing twice is a clean no-op answer, not an error.
  Json::Object again;
  again.emplace("lease", lease);
  EXPECT_FALSE(client.call("release", Json{std::move(again)}).at("released").as_bool());

  // Renewing a dead lease and leasing an unknown version are 404s.
  try {
    Json::Object dead;
    dead.emplace("lease", lease);
    (void)client.call("renew", Json{std::move(dead)});
    FAIL();
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), 404);
  }
  try {
    Json::Object unknown;
    unknown.emplace("version", 99);
    (void)client.call("lease", Json{std::move(unknown)});
    FAIL();
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), 404);
  }
}

TEST(LeaseTest, LeasedVersionSurvivesApplyTrimUntilReleased) {
  ServerOptions options;
  options.workers = 1;
  options.keep_versions = 1;
  ScopedServer scoped{options, "lease_trim"};
  Client client{scoped.socket};

  Json::Object acquire;
  acquire.emplace("version", 1);
  const std::uint64_t lease =
      client.call("lease", Json{std::move(acquire)}).at("lease").as_u64();

  // Deploy a repair: apply advances the head and trims to keep_versions=1,
  // but the leased v1 must stay resolvable.
  CheckProgram fix{kCheckFix, {{"A1_new", kA1New}, {"A3_new", kA3New}}};
  const Json result = wait_result(client, submit_program(client, fix));
  ASSERT_TRUE(result.at("status").at("outcome").at("success").as_bool()) << result.dump();
  Json::Object apply;
  apply.emplace("job", result.at("status").at("job").as_u64());
  EXPECT_EQ(client.call("apply", Json{std::move(apply)}).at("version").as_u64(), 2u);

  ASSERT_NE(scoped.server->store().snapshot(1), nullptr);
  // A check pinned to the leased version still runs.
  Json::Object pinned;
  pinned.emplace("program", kCheckOnly);
  pinned.emplace("snapshot", 1);
  const std::uint64_t pinned_id =
      client.call("submit", Json{std::move(pinned)}).at("job").as_u64();
  EXPECT_EQ(wait_result(client, pinned_id).at("status").at("snapshot").as_u64(), 1u);

  // Release, then advance the head once more: the next trim collects v1
  // now that no lease holds it.
  Json::Object release;
  release.emplace("lease", lease);
  EXPECT_TRUE(client.call("release", Json{std::move(release)}).at("released").as_bool());
  (void)scoped.server->store().apply_update({});
  (void)scoped.server->store().trim(options.keep_versions);
  EXPECT_EQ(scoped.server->store().snapshot(1), nullptr);
}

TEST(LeaseTest, ExpiredLeaseIsSweptAndItsVersionCollected) {
  ServerOptions options;
  options.workers = 1;
  options.coalesce = 1;
  options.overlap = false;
  options.keep_versions = 1;
  ScopedServer scoped{options, "lease_expiry"};
  Client client{scoped.socket};

  // A short lease on v1, never renewed.
  Json::Object acquire;
  acquire.emplace("version", 1);
  acquire.emplace("lease_ms", std::uint64_t{300});
  (void)client.call("lease", Json{std::move(acquire)});

  // Park a fix in the dispatcher, then queue a check pinned to v1 behind
  // it — the lease will lapse while the check is still queued.
  Json::Object blocker;
  blocker.emplace("program", kCheckFix);
  Json::Object acls;
  acls.emplace("A1_new", kA1New);
  acls.emplace("A3_new", kA3New);
  blocker.emplace("acls", Json{std::move(acls)});
  const std::uint64_t blocker_id =
      client.call("submit", Json{std::move(blocker)}).at("job").as_u64();
  wait_until_dispatcher_busy(*scoped.server, blocker_id);
  Json::Object pinned;
  pinned.emplace("program", kCheckOnly);
  pinned.emplace("snapshot", 1);
  const std::uint64_t queued_id =
      client.call("submit", Json{std::move(pinned)}).at("job").as_u64();

  // Advance the head so v1 is only held by the lease (and the queued job's
  // own pin). The accept-loop sweeper must collect the lapsed lease and
  // trim v1 out of the index — the eager collection the lease contract
  // promises — without waiting for another apply.
  (void)scoped.server->store().apply_update({});
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(2);
  while (scoped.server->store().snapshot(1) != nullptr &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(scoped.server->store().snapshot(1), nullptr) << "expired lease never swept";
  EXPECT_EQ(scoped.server->store().lease_count(), 0u);

  // The in-flight job is unharmed: its own snapshot pin (not the lease)
  // keeps v1 alive until it finishes, and it answers against v1.
  const Json queued_result = wait_result(client, queued_id);
  EXPECT_EQ(queued_result.at("status").at("state").as_string(), "done")
      << queued_result.dump();
  EXPECT_EQ(queued_result.at("status").at("snapshot").as_u64(), 1u);
  EXPECT_TRUE(queued_result.at("status").at("outcome").at("success").as_bool());
  (void)wait_result(client, blocker_id);

  const std::string metrics = client.call("metrics").at("prometheus").as_string();
  EXPECT_GE(prometheus_counter(metrics, "jinjing_svc_leases_expired_total"), 1u);
}

// --------------------------------------------------- Dispatcher overlap

TEST(OverlapTest, FixRunsOnTheSideSlotWithoutChangingAnswers) {
  // Oracle first (its registry is then replaced as the global sink by the
  // overlap server, whose metrics the test asserts on).
  ServerOptions serial_options;
  serial_options.workers = 2;
  serial_options.coalesce = 16;
  serial_options.overlap = false;
  ScopedServer serial{serial_options, "overlap_oracle"};
  ServerOptions options;
  options.workers = 2;
  options.coalesce = 16;
  options.overlap = true;
  ScopedServer overlapped{options, "overlap_on"};
  Client client{overlapped.socket};
  Client oracle_client{serial.socket};

  // The fix claims the overlap slot; the checks behind it drain as batch
  // units while it runs instead of queueing until it finishes.
  CheckProgram fix{kCheckFix, {{"A1_new", kA1New}, {"A3_new", kA3New}}};
  const std::uint64_t fix_id = submit_program(client, fix);
  wait_until_dispatcher_busy(*overlapped.server, fix_id);
  std::vector<std::uint64_t> checks;
  for (int i = 0; i < 4; ++i) checks.push_back(submit_program(client, {kCheckOnly, {}}));

  for (const std::uint64_t id : checks) {
    EXPECT_TRUE(wait_result(client, id).at("status").at("outcome").at("success").as_bool());
  }
  const Json fixed = wait_result(client, fix_id);
  ASSERT_EQ(fixed.at("status").at("state").as_string(), "done") << fixed.dump();

  // Overlapped execution must not perturb the fix's answer: the serial
  // oracle produces the byte-identical outcome.
  const Json oracle_fixed = wait_result(oracle_client, submit_program(oracle_client, fix));
  EXPECT_EQ(fixed.at("status").at("outcome").dump(),
            oracle_fixed.at("status").at("outcome").dump());

  const std::string metrics = client.call("metrics").at("prometheus").as_string();
  EXPECT_GE(prometheus_counter(metrics, "jinjing_svc_overlap_dispatches_total"), 1u)
      << metrics;
}

// ------------------------------------------------- Client reconnection

TEST(ClientReconnectTest, CallRetriesAcrossAServerRestartOnTheSameSocket) {
  const std::string socket =
      (std::filesystem::temp_directory_path() /
       ("jinjing_svc_reconnect_" + std::to_string(::getpid()) + ".sock"))
          .string();
  ServerOptions options;
  options.socket_path = socket;
  options.workers = 1;
  auto server = std::make_unique<Server>(figure1_network(), options);
  server->start();

  ClientOptions copts;
  copts.max_retries = 8;
  copts.backoff_ms = 10;
  copts.backoff_cap_ms = 50;
  Client client{socket, copts};
  EXPECT_GE(client.call("info").at("head_version").as_u64(), 1u);

  // Restart the server: the client's fd is dead, and the next call must
  // reconnect and resend transparently.
  server->request_shutdown();
  server->wait();
  server.reset();
  server = std::make_unique<Server>(figure1_network(), options);
  server->start();
  EXPECT_GE(client.call("info").at("head_version").as_u64(), 1u);

  // RpcErrors are the server's answer, never retried or remapped.
  try {
    (void)client.call("frobnicate");
    FAIL();
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), -32601);
  }

  // With the server gone for good, the capped retries run out.
  server->request_shutdown();
  server->wait();
  server.reset();
  std::filesystem::remove(socket);
  EXPECT_THROW((void)client.call("info"), ClientError);
}

TEST(ServerIncrementalTest, ZeroChainDisablesIncrementalServing) {
  ServerOptions options;
  options.workers = 1;
  options.max_delta_chain = 0;
  ScopedServer scoped{options, "off"};
  Client client{scoped.socket};

  EXPECT_EQ(scoped.server->incremental(), nullptr);
  const Json info = client.call("info");
  EXPECT_FALSE(info.at("incremental").as_bool());
  EXPECT_EQ(info.as_object().count("delta_cache"), 0u);

  // The seed behaviour: every job runs the full engine path, verdicts
  // unchanged in both directions.
  EXPECT_TRUE(run_program(client, kCheckOnly).at("status").at("outcome")
                  .at("success").as_bool());
  EXPECT_FALSE(run_program(client, kBreakingModify).at("status").at("outcome")
                   .at("success").as_bool());
  // Copy, not reference: the temporary Json dies at the end of the statement.
  const std::string text = client.call("metrics").at("prometheus").as_string();
  EXPECT_EQ(text.find("jinjing_svc_cached_plans"), std::string::npos);
}

}  // namespace
}  // namespace jinjing::svc
