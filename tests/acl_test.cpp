#include "net/acl.h"

#include <gtest/gtest.h>

namespace jinjing::net {
namespace {

TEST(Match, ParseRuleVariants) {
  const auto r1 = parse_rule("deny dst 1.0.0.0/8");
  EXPECT_EQ(r1.action, Action::Deny);
  EXPECT_EQ(r1.match.dst, parse_prefix("1.0.0.0/8"));
  EXPECT_TRUE(r1.match.src.is_any());

  const auto r2 = parse_rule("permit src 10.0.0.0/24 dst 1.2.0.0/16 dport 80 proto tcp");
  EXPECT_EQ(r2.action, Action::Permit);
  EXPECT_EQ(r2.match.src, parse_prefix("10.0.0.0/24"));
  EXPECT_EQ(r2.match.dst, parse_prefix("1.2.0.0/16"));
  EXPECT_EQ(r2.match.dport, PortRange::single(80));
  EXPECT_EQ(r2.match.proto, ProtoMatch::tcp());

  const auto r3 = parse_rule("permit all");
  EXPECT_TRUE(r3.match.is_any());
}

TEST(Match, ParseRejectsGarbage) {
  EXPECT_THROW((void)parse_rule(""), ParseError);
  EXPECT_THROW((void)parse_rule("allow dst 1.0.0.0/8"), ParseError);
  EXPECT_THROW((void)parse_rule("permit dst"), ParseError);
  EXPECT_THROW((void)parse_rule("permit dest 1.0.0.0/8"), ParseError);
}

TEST(Match, MatchesChecksAllFields) {
  const auto r = parse_rule("permit src 10.0.0.0/8 dst 1.0.0.0/8 sport 1000-2000 dport 80");
  Packet p;
  p.sip = Ipv4{10, 1, 1, 1};
  p.dip = Ipv4{1, 1, 1, 1};
  p.sport = 1500;
  p.dport = 80;
  EXPECT_TRUE(r.match.matches(p));
  p.sport = 999;
  EXPECT_FALSE(r.match.matches(p));
  p.sport = 1500;
  p.dip = Ipv4{2, 1, 1, 1};
  EXPECT_FALSE(r.match.matches(p));
}

TEST(Match, OverlapTest) {
  const auto a = parse_rule("deny dst 1.0.0.0/8").match;
  const auto b = parse_rule("permit dst 1.2.0.0/16").match;
  const auto c = parse_rule("permit dst 2.0.0.0/8").match;
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(a.overlaps(Match::any()));
}

TEST(Acl, FirstMatchWins) {
  const auto acl = Acl::parse({"deny dst 1.0.0.0/8", "permit dst 1.2.3.0/24", "permit all"});
  // The /24 permit is shadowed by the /8 deny above it.
  EXPECT_EQ(acl.evaluate(packet_to("1.2.3.4")), Action::Deny);
  EXPECT_EQ(acl.evaluate(packet_to("9.9.9.9")), Action::Permit);
}

TEST(Acl, DefaultActionAppliesWhenNoRuleMatches) {
  const Acl deny_by_default{{AclRule::permit(Match::dst_prefix(parse_prefix("1.0.0.0/8")))},
                            Action::Deny};
  EXPECT_EQ(deny_by_default.evaluate(packet_to("1.1.1.1")), Action::Permit);
  EXPECT_EQ(deny_by_default.evaluate(packet_to("2.1.1.1")), Action::Deny);
}

TEST(Acl, EmptyAclPermitsAll) {
  EXPECT_TRUE(Acl::permit_all().permits(packet_to("200.1.2.3")));
}

TEST(Acl, FirstMatchIndex) {
  const auto acl = Acl::parse({"deny dst 1.0.0.0/8", "deny dst 2.0.0.0/8", "permit all"});
  EXPECT_EQ(acl.first_match(packet_to("2.0.0.1")), std::size_t{1});
  EXPECT_EQ(acl.first_match(packet_to("3.0.0.1")), std::size_t{2});
  const auto no_permit_all = Acl::parse({"deny dst 1.0.0.0/8"});
  EXPECT_EQ(no_permit_all.first_match(packet_to("3.0.0.1")), std::nullopt);
}

TEST(Acl, PrependGivesHighestPriority) {
  auto acl = Acl::parse({"deny dst 1.0.0.0/8"});
  acl.prepend({parse_rule("permit dst 1.2.0.0/16")});
  EXPECT_EQ(acl.evaluate(packet_to("1.2.0.1")), Action::Permit);
  EXPECT_EQ(acl.evaluate(packet_to("1.3.0.1")), Action::Deny);
}

TEST(Acl, ToStringShowsRulesAndDefault) {
  const auto acl = Acl::parse({"deny dst 1.0.0.0/8"});
  const auto text = to_string(acl);
  EXPECT_NE(text.find("deny dst 1.0.0.0/8"), std::string::npos);
  EXPECT_NE(text.find("permit all (default)"), std::string::npos);
}

TEST(Acl, RuleRoundTripsThroughText) {
  for (const char* text :
       {"deny dst 1.0.0.0/8", "permit src 10.0.0.0/24 dst 1.2.0.0/16 dport 80 proto tcp",
        "permit all", "deny src 7.7.0.0/16 sport 1-1023 proto udp"}) {
    const auto rule = parse_rule(text);
    EXPECT_EQ(parse_rule(to_string(rule)), rule) << text;
  }
}

}  // namespace
}  // namespace jinjing::net
