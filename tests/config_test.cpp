#include <gtest/gtest.h>

#include "config/acl_format.h"
#include "config/topology_format.h"
#include "gen/fixtures.h"
#include "net/acl_algebra.h"
#include "topo/paths.h"

namespace jinjing::config {
namespace {

TEST(AclFormat, ParseCanonicalBody) {
  const auto acl = parse_acl(R"(
# core filter
deny dst 1.0.0.0/8
deny dst 2.0.0.0/8 dport 80-443
permit all
)");
  ASSERT_EQ(acl.size(), 3u);
  EXPECT_EQ(acl.rules()[1].match.dport, net::PortRange(80, 443));
}

TEST(AclFormat, ParseErrorsCarryLineNumbers) {
  try {
    (void)parse_acl("permit all\nbogus rule here\n");
    FAIL() << "expected ParseError";
  } catch (const net::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(IosFormat, BasicRules) {
  const auto r1 = parse_ios_rule("access-list 101 deny ip any 1.0.0.0 0.255.255.255");
  EXPECT_EQ(r1.action, net::Action::Deny);
  EXPECT_TRUE(r1.match.src.is_any());
  EXPECT_EQ(r1.match.dst, net::parse_prefix("1.0.0.0/8"));
  EXPECT_TRUE(r1.match.proto.is_any());

  const auto r2 =
      parse_ios_rule("permit tcp 10.0.0.0 0.0.0.255 1.2.0.0 0.0.255.255 eq 80");
  EXPECT_EQ(r2.action, net::Action::Permit);
  EXPECT_EQ(r2.match.proto, net::ProtoMatch::tcp());
  EXPECT_EQ(r2.match.src, net::parse_prefix("10.0.0.0/24"));
  EXPECT_EQ(r2.match.dst, net::parse_prefix("1.2.0.0/16"));
  EXPECT_EQ(r2.match.dport, net::PortRange::single(80));

  const auto r3 = parse_ios_rule("permit ip host 9.9.9.9 any");
  EXPECT_EQ(r3.match.src, net::parse_prefix("9.9.9.9/32"));
}

TEST(IosFormat, PortQualifiers) {
  EXPECT_EQ(parse_ios_rule("permit tcp any any range 1000 2000").match.dport,
            net::PortRange(1000, 2000));
  EXPECT_EQ(parse_ios_rule("permit tcp any any gt 1023").match.dport,
            net::PortRange(1024, 65535));
  EXPECT_EQ(parse_ios_rule("permit tcp any any lt 1024").match.dport, net::PortRange(0, 1023));
  EXPECT_EQ(parse_ios_rule("permit tcp any eq 53 any").match.sport, net::PortRange::single(53));
}

TEST(IosFormat, RejectsMalformed) {
  EXPECT_THROW((void)parse_ios_rule("access-list 101 frobnicate ip any any"), net::ParseError);
  EXPECT_THROW((void)parse_ios_rule("permit ip any"), net::ParseError);
  EXPECT_THROW((void)parse_ios_rule("permit ip 1.0.0.0 0.255.0.255 any"), net::ParseError)
      << "non-contiguous wildcard";
  EXPECT_THROW((void)parse_ios_rule("permit ip any any extra"), net::ParseError);
  EXPECT_THROW((void)parse_ios_rule("permit tcp any any gt 65535"), net::ParseError);
}

TEST(IosFormat, DialectDetectionAndAutoParse) {
  const char* ios = R"(
! vendor config
access-list 101 deny ip any 6.0.0.0 0.255.255.255
access-list 101 permit ip any any
)";
  EXPECT_EQ(detect_dialect(ios), AclDialect::Ios);
  EXPECT_EQ(detect_dialect("deny dst 6.0.0.0/8"), AclDialect::Canonical);

  const auto acl = parse_acl_auto(ios);
  ASSERT_EQ(acl.size(), 2u);
  EXPECT_FALSE(acl.permits(net::packet_to("6.1.2.3")));
  EXPECT_TRUE(acl.permits(net::packet_to("7.1.2.3")));
}

TEST(IosFormat, RoundTripPreservesSemantics) {
  const auto original = net::Acl::parse({
      "deny dst 6.0.0.0/8",
      "permit src 10.0.0.0/24 dst 1.2.0.0/16 dport 80 proto tcp",
      "deny src 7.7.7.7 sport 1000-2000 proto udp",
      "permit all",
  });
  const auto ios_text = print_acl_ios(original, 101);
  const auto reparsed = parse_acl(ios_text, AclDialect::Ios);
  EXPECT_TRUE(net::equivalent(original, reparsed)) << ios_text;

  const auto canonical = parse_acl(print_acl(original));
  EXPECT_EQ(canonical, original);
}

TEST(PacketSetSpec, ParseUnion) {
  const auto set = parse_packet_set("dst 1.0.0.0/8 | dst 2.0.0.0/8 dport 80");
  EXPECT_TRUE(set.contains(net::packet_to("1.9.9.9")));
  net::Packet p = net::packet_to("2.0.0.1");
  EXPECT_FALSE(set.contains(p));
  p.dport = 80;
  EXPECT_TRUE(set.contains(p));
  EXPECT_TRUE(parse_packet_set("all").equals(net::PacketSet::all()));
  EXPECT_TRUE(parse_packet_set("  ").equals(net::PacketSet::all()));
}

TEST(PacketSetSpec, PrintParseRoundTrip) {
  const auto set = parse_packet_set("dst 1.0.0.0/8 | src 10.0.0.0/16 dport 443");
  EXPECT_TRUE(parse_packet_set(print_packet_set(set)).equals(set));
  EXPECT_EQ(print_packet_set(net::PacketSet::all()), "all");
}

constexpr const char* kNetwork = R"(
# two devices, one link
device A
device B
interface A:1 external
interface A:2
interface B:1
interface B:2 external
link A:1 -> A:2 dst 1.0.0.0/8 | dst 2.0.0.0/8
link A:2 -> B:1 dst 1.0.0.0/8 | dst 2.0.0.0/8
link B:1 -> B:2 dst 1.0.0.0/8 | dst 2.0.0.0/8
acl A:1-in
  deny dst 2.0.0.0/8
  permit all
end
acl B:2-out
access-list 101 deny ip any 1.128.0.0 0.127.255.255
access-list 101 permit ip any any
end
traffic dst 1.0.0.0/8 | dst 2.0.0.0/8
)";

TEST(NetworkFormat, ParsesDevicesLinksAclsTraffic) {
  const auto network = parse_network(kNetwork);
  EXPECT_EQ(network.topo.device_count(), 2u);
  EXPECT_EQ(network.topo.interface_count(), 4u);
  EXPECT_EQ(network.topo.edges().size(), 3u);

  const auto a1 = network.topo.find_interface("A:1");
  const auto b2 = network.topo.find_interface("B:2");
  ASSERT_TRUE(a1 && b2);
  EXPECT_TRUE(network.topo.has_acl({*a1, topo::Dir::In}));
  EXPECT_TRUE(network.topo.has_acl({*b2, topo::Dir::Out}));
  // The IOS block parsed: 1.128/9 denied on egress.
  EXPECT_FALSE(network.topo.acl(*b2, topo::Dir::Out).permits(net::packet_to("1.200.0.1")));
  EXPECT_TRUE(network.topo.acl(*b2, topo::Dir::Out).permits(net::packet_to("1.1.0.1")));

  // Paths: A:1 -> B:2.
  const auto scope = topo::Scope::whole_network(network.topo);
  const auto paths = topo::enumerate_paths(network.topo, scope);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(to_string(network.topo, paths[0]), "<A:1, A:2, B:1, B:2>");
}

TEST(NetworkFormat, RoundTripsThroughPrint) {
  const auto network = parse_network(kNetwork);
  const auto printed = print_network(network);
  const auto reparsed = parse_network(printed);
  EXPECT_EQ(reparsed.topo.device_count(), network.topo.device_count());
  EXPECT_EQ(reparsed.topo.interface_count(), network.topo.interface_count());
  EXPECT_EQ(reparsed.topo.edges().size(), network.topo.edges().size());
  EXPECT_TRUE(reparsed.traffic.equals(network.traffic));
  for (const auto slot : network.topo.bound_slots()) {
    const auto iface = reparsed.topo.find_interface(network.topo.qualified_name(slot.iface));
    ASSERT_TRUE(iface.has_value());
    EXPECT_TRUE(net::equivalent(reparsed.topo.acl(*iface, slot.dir), network.topo.acl(slot)));
  }
}

TEST(NetworkFormat, Figure1RoundTrip) {
  // The Figure 1 fixture survives print -> parse with identical checking
  // behaviour (paths and FEC counts).
  const auto f = gen::make_figure1();
  NetworkFile source;
  source.topo = f.topo;
  source.traffic = f.traffic;
  const auto printed = print_network(source);
  const auto reparsed = parse_network(printed);
  const auto scope = topo::Scope::whole_network(reparsed.topo);
  EXPECT_EQ(topo::enumerate_paths(reparsed.topo, scope).size(), 4u);
}

TEST(NetworkFormat, ErrorsArePrecise) {
  EXPECT_THROW((void)parse_network("gizmo A"), net::ParseError);
  EXPECT_THROW((void)parse_network("interface A:1"), net::ParseError);          // unknown device
  EXPECT_THROW((void)parse_network("device A\nlink A:1 B:2 all"), net::ParseError);  // no arrow
  EXPECT_THROW((void)parse_network("device A\ninterface A:1\nacl A:1-in\npermit all\n"),
               net::ParseError);  // unterminated block
  try {
    (void)parse_network("device A\ndevice B\nlink A:9 -> B:9 all");
    FAIL();
  } catch (const net::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}


TEST(Groups, DeclareAndExpandInAclBody) {
  const auto acl = parse_acl_auto(R"(
group WEB = dst 1.0.0.0/8 dport 80 | dst 2.0.0.0/8 dport 443
deny @WEB
permit all
)");
  ASSERT_EQ(acl.size(), 3u);
  net::Packet p = net::packet_to("1.5.0.1");
  p.dport = 80;
  EXPECT_FALSE(acl.permits(p));
  p.dport = 81;
  EXPECT_TRUE(acl.permits(p));
  p = net::packet_to("2.0.0.9");
  p.dport = 443;
  EXPECT_FALSE(acl.permits(p));
}

TEST(Groups, ComposeAndShadowing) {
  GroupTable groups;
  EXPECT_TRUE(parse_group_line("group A = dst 1.0.0.0/8", groups));
  EXPECT_TRUE(parse_group_line("group B = @A | dst 2.0.0.0/8", groups));
  EXPECT_EQ(groups.at("B").size(), 2u);
  EXPECT_FALSE(parse_group_line("permit all", groups));
  EXPECT_THROW((void)parse_group_line("group X =", groups), net::ParseError);
  EXPECT_THROW((void)parse_group_line("group = dst 1.0.0.0/8", groups), net::ParseError);
}

TEST(Groups, UnknownGroupRejected) {
  EXPECT_THROW((void)parse_acl_auto("deny @GHOST\n"), net::ParseError);
  EXPECT_THROW((void)parse_match_union("@nope", {}), net::ParseError);
}

TEST(Groups, NetworkFileGroupsReachAclsAndPredicates) {
  const auto network = parse_network(R"(
group SERVICES = dst 1.0.0.0/8 | dst 2.0.0.0/8
device A
device B
interface A:1 external
interface A:2
interface B:1
interface B:2 external
link A:1 -> A:2 @SERVICES
link A:2 -> B:1 @SERVICES
link B:1 -> B:2 @SERVICES
acl A:1-in
deny @SERVICES
end
traffic @SERVICES
)");
  const auto a1 = network.topo.find_interface("A:1");
  ASSERT_TRUE(a1.has_value());
  EXPECT_FALSE(network.topo.acl(*a1, topo::Dir::In).permits(net::packet_to("1.1.1.1")));
  EXPECT_TRUE(network.traffic.contains(net::packet_to("2.1.1.1")));
  EXPECT_FALSE(network.traffic.contains(net::packet_to("3.1.1.1")));
}

}  // namespace
}  // namespace jinjing::config
