#include "lai/lexer.h"

#include <gtest/gtest.h>

namespace jinjing::lai {
namespace {

std::vector<TokenKind> kinds(std::string_view src) {
  std::vector<TokenKind> out;
  for (const auto& tok : tokenize(src)) out.push_back(tok.kind);
  return out;
}

TEST(LaiLexer, KeywordsAndPunctuation) {
  EXPECT_EQ(kinds("scope A:*"), (std::vector<TokenKind>{TokenKind::KwScope, TokenKind::Ident,
                                                        TokenKind::Colon, TokenKind::Star,
                                                        TokenKind::End}));
  EXPECT_EQ(kinds("check"), (std::vector<TokenKind>{TokenKind::KwCheck, TokenKind::End}));
}

TEST(LaiLexer, ArrowAndDirectionSuffixes) {
  EXPECT_EQ(kinds("R1:*-in -> R3:*-out"),
            (std::vector<TokenKind>{TokenKind::Ident, TokenKind::Colon, TokenKind::Star,
                                    TokenKind::DirIn, TokenKind::Arrow, TokenKind::Ident,
                                    TokenKind::Colon, TokenKind::Star, TokenKind::DirOut,
                                    TokenKind::End}));
}

TEST(LaiLexer, PrefixesLexAsSingleIdent) {
  const auto toks = tokenize("isolate from 1.2.0.0/16");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, TokenKind::KwIsolate);
  EXPECT_EQ(toks[1].kind, TokenKind::KwFrom);
  EXPECT_EQ(toks[2].kind, TokenKind::Ident);
  EXPECT_EQ(toks[2].text, "1.2.0.0/16");
}

TEST(LaiLexer, NewlinesCollapseIntoOneSeparator) {
  const auto toks = kinds("check\n\n\nfix");
  EXPECT_EQ(toks, (std::vector<TokenKind>{TokenKind::KwCheck, TokenKind::Newline,
                                          TokenKind::KwFix, TokenKind::End}));
}

TEST(LaiLexer, CommentsIgnored) {
  const auto toks = kinds("check # verify the update\nfix");
  EXPECT_EQ(toks, (std::vector<TokenKind>{TokenKind::KwCheck, TokenKind::Newline,
                                          TokenKind::KwFix, TokenKind::End}));
}

TEST(LaiLexer, PrimedNamesAreIdents) {
  const auto toks = tokenize("modify D:2 to D2'");
  EXPECT_EQ(toks[5].kind, TokenKind::Ident);
  EXPECT_EQ(toks[5].text, "D2'");
}

TEST(LaiLexer, TrailingNewlineDropped) {
  EXPECT_EQ(kinds("check\n"), (std::vector<TokenKind>{TokenKind::KwCheck, TokenKind::End}));
}

TEST(LaiLexer, ErrorsCarryPosition) {
  try {
    (void)tokenize("scope A\n   ?");
    FAIL() << "expected LaiError";
  } catch (const LaiError& e) {
    EXPECT_EQ(e.line, 2u);
    EXPECT_EQ(e.column, 4u);
  }
}

TEST(LaiLexer, BareDashRejected) { EXPECT_THROW((void)tokenize("a - b"), LaiError); }

}  // namespace
}  // namespace jinjing::lai
