// Focused coverage for paths not exercised elsewhere: enumeration options,
// engine option plumbing, SMT statistics, interval-tree queries, staged
// deployment at WAN scale.
#include <gtest/gtest.h>

#include "config/acl_format.h"
#include "core/deploy.h"
#include "core/engine.h"
#include "core/synth_opt.h"
#include "gen/fixtures.h"
#include "gen/scenario.h"
#include "net/acl_algebra.h"
#include "smt/acl_encoder.h"
#include "topo/paths.h"
#include "topo/rib.h"

namespace jinjing {
namespace {

TEST(PathEnumOptions, PruneUnroutableDropsDeadPaths) {
  // A diamond where one branch carries nothing.
  topo::Topology t;
  const auto a = t.add_device("A");
  const auto b = t.add_device("B");
  const auto a1 = t.add_interface(a, "1");
  const auto a2 = t.add_interface(a, "2");
  const auto a3 = t.add_interface(a, "3");
  const auto b1 = t.add_interface(b, "1");
  const auto b2 = t.add_interface(b, "2");
  const auto b3 = t.add_interface(b, "3");
  t.mark_external(a1);
  t.mark_external(b3);
  t.add_edge(a1, a2, net::PacketSet::all());
  t.add_edge(a1, a3, net::PacketSet::empty());  // dead branch
  t.add_edge(a2, b1, net::PacketSet::all());
  t.add_edge(a3, b2, net::PacketSet::all());
  t.add_edge(b1, b3, net::PacketSet::all());
  t.add_edge(b2, b3, net::PacketSet::all());

  const auto scope = topo::Scope::whole_network(t);
  EXPECT_EQ(topo::enumerate_paths(t, scope).size(), 2u);
  topo::PathEnumOptions prune;
  prune.prune_unroutable = true;
  EXPECT_EQ(topo::enumerate_paths(t, scope, prune).size(), 1u);
}

TEST(EngineOptions, PlumbedThroughToPrimitives) {
  const auto f = gen::make_figure1();
  core::EngineOptions options;
  options.check.use_differential = false;
  options.check.encoder = smt::EncoderStrategy::Sequential;
  options.check.per_entry_fec = false;
  options.fix.simplify_result = false;
  core::Engine engine{f.topo, options};

  lai::AclLibrary lib;
  lib.emplace("A1p", net::Acl::parse({"deny dst 1.0.0.0/8", "deny dst 2.0.0.0/8",
                                      "deny dst 6.0.0.0/8", "permit all"}));
  lib.emplace("A3p", net::Acl::parse({"deny dst 7.0.0.0/8", "permit all"}));
  lib.emplace("permit_all", net::Acl::permit_all());
  const auto report = engine.run_program(R"(
scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify A:1-in to A1p, A:3-out to A3p, C:1-in to permit_all, D:2-in to permit_all
check
fix
check
)",
                                         lib, f.traffic);
  ASSERT_EQ(report.outcomes.size(), 3u);
  EXPECT_FALSE(report.outcomes[0].check->consistent);
  EXPECT_TRUE(report.success());
  // Without simplification the fixed A1 keeps its shadowed rules.
  const auto& a1 = report.final_update.at({f.A1, topo::Dir::In});
  EXPECT_GT(a1.size(), 2u);
  EXPECT_TRUE(net::equivalent(a1, net::Acl::parse({"deny dst 6.0.0.0/8", "permit all"})));
}

TEST(SmtStatistics, AccumulateAcrossQueries) {
  smt::SmtContext smt;
  const auto h = smt.packet_vars();
  auto solver = smt.make_solver();
  solver.add(smt::acl_permits(h, net::Acl::parse({"deny dst 1.0.0.0/8", "permit all"})));
  (void)smt.solve_for_packet(solver, h);
  EXPECT_EQ(smt.query_count(), 1u);
  EXPECT_GE(smt.solve_seconds(), 0.0);
  // Unknown keys read as zero.
  EXPECT_EQ(smt.statistic("no-such-statistic"), 0u);
}

TEST(DstIntervalIndexDirect, CandidatesRespectIntervals) {
  std::vector<net::HyperCube> cubes;
  for (const char* p : {"1.0.0.0/8", "2.0.0.0/8", "128.0.0.0/9"}) {
    net::HyperCube c;
    c.set_interval(net::Field::DstIp, net::parse_prefix(p).interval());
    cubes.push_back(c);
  }
  const core::DstIntervalIndex index{cubes};
  EXPECT_EQ(index.candidates(net::parse_prefix("1.2.0.0/16").interval()).size(), 1u);
  EXPECT_EQ(index.candidates(net::parse_prefix("0.0.0.0/0").interval()).size(), 3u);
  EXPECT_TRUE(index.candidates(net::parse_prefix("3.0.0.0/8").interval()).empty());
  // Empty index.
  const core::DstIntervalIndex empty{std::vector<net::HyperCube>{}};
  EXPECT_TRUE(empty.candidates(net::Interval::full(32)).empty());
  EXPECT_FALSE(empty.intersects(net::PacketSet::all()));
}

TEST(StagedDeployAtWanScale, RelocationPlanIsTransientSafe) {
  // Stage the (repaired) scenario-2 relocation on the small WAN and verify
  // the availability bound on every intermediate state of the phase-ordered
  // push sequence.
  const auto wan = gen::make_wan(gen::small_wan());
  const auto update = gen::ingress_to_egress_update(wan);
  const auto steps = core::staged_plan(wan.topo, update, core::StagingMode::AvailabilityFirst);
  ASSERT_FALSE(steps.empty());

  topo::AclUpdate state;
  for (std::size_t pushed = 0; pushed <= steps.size(); ++pushed) {
    if (pushed > 0) state.insert_or_assign(steps[pushed - 1].slot, steps[pushed - 1].acl);
    const topo::ConfigView current{wan.topo, &state};
    for (const auto& [slot, after] : update) {
      const auto now = net::permitted_set(current.acl(slot));
      const auto lo = net::permitted_set(wan.topo.acl(slot)) & net::permitted_set(after);
      EXPECT_TRUE(now.contains(lo)) << "push " << pushed;
    }
  }
}

TEST(IosPrinter, EmitsQualifiersAndWildcards) {
  const auto acl = net::Acl::parse(
      {"deny src 10.0.0.0/8 dst 1.2.3.4 sport 1000-2000 dport 80 proto udp"});
  const auto text = config::print_acl_ios(acl, 150);
  EXPECT_NE(text.find("access-list 150 deny udp"), std::string::npos) << text;
  EXPECT_NE(text.find("10.0.0.0 0.255.255.255 range 1000 2000"), std::string::npos);
  EXPECT_NE(text.find("host 1.2.3.4 eq 80"), std::string::npos);
}

TEST(RibInstall, SkipsSelfLoopsAndEmptyPredicates) {
  topo::Topology t;
  const auto b = t.add_device("B");
  const auto b1 = t.add_interface(b, "1");
  const auto b2 = t.add_interface(b, "2");
  topo::Rib rib;
  rib.add(net::parse_prefix("1.0.0.0/8"), b2);
  rib.add(net::parse_prefix("1.0.0.0/8"), b1);  // ECMP incl. the ingress itself
  topo::install_rib(t, {b1}, rib);
  for (const auto& edge : t.edges()) {
    EXPECT_NE(edge.from, edge.to);
  }
}

}  // namespace
}  // namespace jinjing
