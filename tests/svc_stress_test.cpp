// Soak test (ctest label "slow"): N concurrent clients drive randomized
// check / check+fix jobs at a live server, sprinkle cancellations, and one
// client applies a plan mid-run so later jobs pin a newer snapshot. Every
// job must reach a definite terminal state, and every completed job's
// result must match a sequential oracle engine run against the same
// snapshot.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "config/acl_format.h"
#include "core/deploy.h"
#include "core/engine.h"
#include "gen/scenario.h"
#include "gen/wan.h"
#include "svc/client.h"
#include "svc/server.h"

namespace jinjing::svc {
namespace {

struct JobRecord {
  std::uint64_t id = 0;
  std::string program;
  std::map<std::string, std::string> acl_bodies;
  bool cancel_attempted = false;
};

/// A check+fix program for a rule perturbation, together with the ACL
/// bodies a client would ship over the wire.
struct Workload {
  std::string program;
  std::map<std::string, std::string> acl_bodies;
};

std::string scope_line(const gen::Wan& wan) {
  std::string scope = "scope ";
  for (topo::DeviceId d = 0; d < wan.topo.device_count(); ++d) {
    if (d > 0) scope += ", ";
    scope += wan.topo.device_name(d);
  }
  return scope;
}

std::string slot_ref(const gen::Wan& wan, topo::AclSlot slot) {
  return wan.topo.qualified_name(slot.iface) + (slot.dir == topo::Dir::In ? "-in" : "-out");
}

Workload perturb_workload(const gen::Wan& wan, double fraction, unsigned seed,
                          const std::string& commands = "check\nfix\n") {
  const topo::AclUpdate update = gen::perturb_rules(wan, fraction, seed);
  Workload workload;
  std::string modifies;
  std::size_t i = 0;
  for (const auto& [slot, acl] : update) {
    const std::string name = "acl_" + std::to_string(i++);
    modifies += "modify " + slot_ref(wan, slot) + " to " + name + "\n";
    workload.acl_bodies.emplace(name, config::print_acl(acl));
  }
  std::string allow = "allow ";
  for (std::size_t g = 0; g < wan.gateways.size(); ++g) {
    if (g > 0) allow += ", ";
    allow += wan.topo.device_name(wan.gateways[g]);
  }
  workload.program = scope_line(wan) + "\n" + allow + "\n" + modifies + commands;
  return workload;
}

/// A consistency-preserving rebind: the slot's current ACL with its first
/// rule duplicated. First-match semantics make the check pass, so the plan
/// is deployable — but the rule lists differ, so the apply is a real
/// version bump with a non-trivial differential for the delta cache.
Workload duplicate_rule_workload(const gen::Wan& wan, const topo::Topology& head,
                                 topo::AclSlot slot) {
  const net::Acl& acl = head.acl(slot);
  std::vector<net::AclRule> rules{acl.rules().begin(), acl.rules().end()};
  rules.insert(rules.begin(), rules.front());
  Workload workload;
  workload.acl_bodies.emplace("dup", config::print_acl(net::Acl{std::move(rules),
                                                                acl.default_action()}));
  workload.program =
      scope_line(wan) + "\nmodify " + slot_ref(wan, slot) + " to dup\ncheck\n";
  return workload;
}

std::string check_only_program(const gen::Wan& wan) {
  std::string scope = "scope ";
  for (topo::DeviceId d = 0; d < wan.topo.device_count(); ++d) {
    if (d > 0) scope += ", ";
    scope += wan.topo.device_name(d);
  }
  return scope + "\ncheck\n";
}

Json submit_job(Client& client, const std::string& program,
                const std::map<std::string, std::string>& acl_bodies) {
  Json::Object params;
  params.emplace("program", program);
  if (!acl_bodies.empty()) {
    Json::Object acls;
    for (const auto& [name, body] : acl_bodies) acls.emplace(name, body);
    params.emplace("acls", Json{std::move(acls)});
  }
  return client.call("submit", Json{std::move(params)});
}

TEST(SvcStressTest, ConcurrentClientsMatchSequentialOracle) {
  const gen::Wan wan = gen::make_wan(gen::small_wan());
  config::NetworkFile network;
  network.topo = wan.topo;  // the oracle keeps its own copy via the store
  network.traffic = wan.traffic;

  const std::string socket_path =
      (std::filesystem::temp_directory_path() /
       ("jinjing_svc_stress_" + std::to_string(::getpid()) + ".sock"))
          .string();
  ServerOptions options;
  options.socket_path = socket_path;
  options.queue_depth = 128;
  options.workers = 3;
  options.keep_versions = 64;  // every snapshot stays resolvable for the oracle
  Server server{std::move(network), options};
  server.start();

  constexpr int kClients = 3;
  constexpr int kJobsPerClient = 5;
  std::mutex records_mutex;
  std::vector<JobRecord> records;

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client{socket_path};
      for (int j = 0; j < kJobsPerClient; ++j) {
        JobRecord record;
        const unsigned seed = static_cast<unsigned>(c * 100 + j + 1);
        if (j < 3) {
          record.program = check_only_program(wan);
        } else {
          const Workload workload = perturb_workload(wan, 0.08, seed);
          record.program = workload.program;
          record.acl_bodies = workload.acl_bodies;
        }
        const Json submitted = submit_job(client, record.program, record.acl_bodies);
        record.id = submitted.at("job").as_u64();
        if (j == kJobsPerClient - 1) {
          // Cancellation racing execution: must yield *some* terminal state.
          Json::Object cancel;
          cancel.emplace("job", record.id);
          (void)client.call("cancel", Json{std::move(cancel)});
          record.cancel_attempted = true;
        }
        const std::lock_guard<std::mutex> lock{records_mutex};
        records.push_back(std::move(record));
      }
    });
  }

  // Mid-run apply from a separate session: verify a perturbation against
  // head, deploy the repaired plan, advancing every later job's snapshot.
  {
    Client applier{socket_path};
    const Workload workload = perturb_workload(wan, 0.05, 999);
    const Json submitted = submit_job(applier, workload.program, workload.acl_bodies);
    JobRecord record;
    record.id = submitted.at("job").as_u64();
    record.program = workload.program;
    record.acl_bodies = workload.acl_bodies;
    Json::Object wait;
    wait.emplace("job", record.id);
    const Json result = applier.call("result", Json{std::move(wait)});
    ASSERT_EQ(result.at("status").at("state").as_string(), "done") << result.dump();
    if (result.at("status").at("outcome").at("success").as_bool()) {
      Json::Object apply;
      apply.emplace("job", record.id);
      const Json applied = applier.call("apply", Json{std::move(apply)});
      EXPECT_GE(applied.at("version").as_u64(), 2u);
    }
    const std::lock_guard<std::mutex> lock{records_mutex};
    records.push_back(std::move(record));
  }

  for (auto& thread : clients) thread.join();

  // Every job terminates with a definite status.
  Client checker{socket_path};
  struct Completed {
    JobRecord record;
    Version snapshot = 0;
    bool success = false;
    std::string plan;
  };
  std::vector<Completed> completed;
  for (const auto& record : records) {
    Json::Object wait;
    wait.emplace("job", record.id);
    wait.emplace("timeout_ms", std::uint64_t{300000});
    const Json result = checker.call("result", Json{std::move(wait)});
    ASSERT_TRUE(result.at("done").as_bool()) << "job " << record.id << " never terminated";
    const Json& status = result.at("status");
    const std::string state = status.at("state").as_string();
    EXPECT_TRUE(state == "done" || state == "failed" || state == "cancelled") << state;
    if (state == "failed") {
      ADD_FAILURE() << "job " << record.id << " failed: "
                    << status.at("outcome").at("error").as_string();
    }
    if (state == "done") {
      Completed entry;
      entry.record = record;
      entry.snapshot = status.at("snapshot").as_u64();
      entry.success = status.at("outcome").at("success").as_bool();
      entry.plan = status.at("outcome").at("plan").as_string();
      completed.push_back(std::move(entry));
    }
  }
  EXPECT_GE(completed.size(), static_cast<std::size_t>(kClients * 3));  // checks at least

  // Oracle: a fresh single-threaded engine per job must reproduce every
  // completed job's verdict and plan exactly — the service guarantees
  // reproducible answers by giving every job a fresh SMT session (a reused
  // incremental session can steer Z3 to a different, equally valid, model),
  // so the oracle must be equally fresh.
  for (const auto& entry : completed) {
    const SnapshotPtr snapshot = server.store().snapshot(entry.snapshot);
    ASSERT_NE(snapshot, nullptr) << "snapshot " << entry.snapshot << " trimmed too early";
    core::Engine oracle{*snapshot->topo};

    lai::AclLibrary library;
    library.emplace("permit_all", net::Acl::permit_all());
    for (const auto& [name, body] : entry.record.acl_bodies) {
      library.insert_or_assign(name, config::parse_acl_auto(body));
    }
    const core::EngineReport report =
        oracle.run_program(entry.record.program, library, snapshot->traffic);
    EXPECT_EQ(report.success(), entry.success) << "job " << entry.record.id;
    EXPECT_EQ(core::format_plan(*snapshot->topo, report.final_update), entry.plan)
        << "job " << entry.record.id << " plan diverged from the oracle";
  }

  server.request_shutdown();
  server.wait();
  std::filesystem::remove(socket_path);
}

std::uint64_t prometheus_counter(const std::string& text, const std::string& name) {
  // Anchor at a line start so the "# TYPE <name> counter" comment never matches.
  const std::string needle = "\n" + name + " ";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return 0;
  return std::stoull(text.substr(pos + needle.size()));
}

/// The coalescing soak at workers=4: clients burst-submit pure-check jobs
/// (no per-job wait) so the queue backs up behind the first plan build and
/// the dispatcher forms real batches, a mid-burst apply advances the head
/// between coalesce and dispatch, and cancellations race execution. Every
/// completed job must match a fresh single-engine oracle on its pinned
/// snapshot — coalesced set-algebra execution is not allowed to change any
/// client-visible answer.
TEST(SvcStressTest, CoalescedBatchesMatchOracleAtFourWorkers) {
  const gen::Wan wan = gen::make_wan(gen::small_wan());
  config::NetworkFile network;
  network.topo = wan.topo;
  network.traffic = wan.traffic;

  const std::string socket_path =
      (std::filesystem::temp_directory_path() /
       ("jinjing_svc_stress_batch_" + std::to_string(::getpid()) + ".sock"))
          .string();
  ServerOptions options;
  options.socket_path = socket_path;
  options.queue_depth = 128;
  options.workers = 4;
  options.coalesce = 16;
  // The blocker below must hold the dispatch loop itself so the burst
  // provably coalesces behind it; the overlap slot would run the fix on a
  // side thread and drain the burst job by job instead.
  options.overlap = false;
  options.keep_versions = 64;  // every snapshot stays resolvable for the oracle
  Server server{std::move(network), options};
  server.start();

  // Occupy the dispatcher before bursting: a fix job holds the (serial)
  // dispatch loop for a full plan-build-and-repair, so every burst job below
  // is provably queued when the dispatcher next calls next_batch — batches
  // form by construction, not by racing submission against the first plan
  // build (the old flake: a fast dispatcher drained the burst one by one).
  Client blocker_client{socket_path};
  const Workload blocker = perturb_workload(wan, 0.12, 997);
  const Json blocker_submitted =
      submit_job(blocker_client, blocker.program, blocker.acl_bodies);
  const auto blocker_status = server.scheduler().wait_started(
      blocker_submitted.at("job").as_u64(), std::chrono::minutes(5));
  ASSERT_TRUE(blocker_status.has_value()) << "blocker never left the queue";

  constexpr int kClients = 3;
  constexpr int kJobsPerClient = 6;
  std::mutex records_mutex;
  std::vector<JobRecord> records;

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client{socket_path};
      for (int j = 0; j < kJobsPerClient; ++j) {
        JobRecord record;
        if (j % 2 == 0) {
          record.program = check_only_program(wan);
        } else {
          // Pure check of a pending perturbation: coalescable (no fix), and
          // roughly half of the seeds verify inconsistent, so batches mix
          // clean and violated verdicts.
          const unsigned seed = static_cast<unsigned>(c * 100 + j + 11);
          const Workload workload = perturb_workload(wan, 0.06, seed, "check\n");
          record.program = workload.program;
          record.acl_bodies = workload.acl_bodies;
        }
        const Json submitted = submit_job(client, record.program, record.acl_bodies);
        record.id = submitted.at("job").as_u64();
        if (j == kJobsPerClient - 1) {
          Json::Object cancel;
          cancel.emplace("job", record.id);
          (void)client.call("cancel", Json{std::move(cancel)});
          record.cancel_attempted = true;
        }
        const std::lock_guard<std::mutex> lock{records_mutex};
        records.push_back(std::move(record));
      }
    });
  }

  // Advance the head while the burst is in flight: jobs already queued keep
  // their pinned snapshot (and coalesce key) and must verify against it;
  // jobs submitted afterwards pin the new head and form their own batches.
  (void)server.store().apply_update({});

  for (auto& thread : clients) thread.join();

  Client checker{socket_path};
  struct Completed {
    JobRecord record;
    Version snapshot = 0;
    bool success = false;
    std::string plan;
  };
  std::vector<Completed> completed;
  for (const auto& record : records) {
    Json::Object wait;
    wait.emplace("job", record.id);
    wait.emplace("timeout_ms", std::uint64_t{300000});
    const Json result = checker.call("result", Json{std::move(wait)});
    ASSERT_TRUE(result.at("done").as_bool()) << "job " << record.id << " never terminated";
    const Json& status = result.at("status");
    const std::string state = status.at("state").as_string();
    EXPECT_TRUE(state == "done" || state == "cancelled") << status.dump();
    if (state == "done") {
      Completed entry;
      entry.record = record;
      entry.snapshot = status.at("snapshot").as_u64();
      entry.success = status.at("outcome").at("success").as_bool();
      entry.plan = status.at("outcome").at("plan").as_string();
      completed.push_back(std::move(entry));
    }
  }
  EXPECT_GE(completed.size(), static_cast<std::size_t>(kClients * (kJobsPerClient - 1)));

  // The burst actually coalesced: the queue backed up behind the first plan
  // build, so at least one multi-job dispatch unit formed.
  const std::string metrics = checker.call("metrics").at("prometheus").as_string();
  EXPECT_GE(prometheus_counter(metrics, "jinjing_svc_batch_jobs_coalesced_total"), 2u)
      << metrics;
  EXPECT_GE(prometheus_counter(metrics, "jinjing_svc_batch_dispatches_total"), 1u);

  for (const auto& entry : completed) {
    const SnapshotPtr snapshot = server.store().snapshot(entry.snapshot);
    ASSERT_NE(snapshot, nullptr) << "snapshot " << entry.snapshot << " trimmed too early";
    core::Engine oracle{*snapshot->topo};
    lai::AclLibrary library;
    library.emplace("permit_all", net::Acl::permit_all());
    for (const auto& [name, body] : entry.record.acl_bodies) {
      library.insert_or_assign(name, config::parse_acl_auto(body));
    }
    const core::EngineReport report =
        oracle.run_program(entry.record.program, library, snapshot->traffic);
    EXPECT_EQ(report.success(), entry.success) << "job " << entry.record.id;
    EXPECT_EQ(core::format_plan(*snapshot->topo, report.final_update), entry.plan)
        << "job " << entry.record.id << " plan diverged from the oracle";
  }

  server.request_shutdown();
  server.wait();
  std::filesystem::remove(socket_path);
}

/// The incremental-serving soak: check-only clients (the delta-scoped fast
/// path) race a dedicated applier that keeps advancing the head with
/// consistency-preserving deploys. Every completed job is re-run on a fresh
/// single-threaded engine against its pinned snapshot — cached plans,
/// rebased entries and reused verdicts must never change an answer.
TEST(SvcStressTest, IncrementalServingMatchesOracleUnderConcurrentApplies) {
  const gen::Wan wan = gen::make_wan(gen::small_wan());
  config::NetworkFile network;
  network.topo = wan.topo;
  network.traffic = wan.traffic;

  const std::string socket_path =
      (std::filesystem::temp_directory_path() /
       ("jinjing_svc_stress_inc_" + std::to_string(::getpid()) + ".sock"))
          .string();
  ServerOptions options;
  options.socket_path = socket_path;
  options.queue_depth = 128;
  options.workers = 3;
  options.keep_versions = 64;  // every snapshot stays resolvable for the oracle
  Server server{std::move(network), options};
  server.start();
  ASSERT_NE(server.incremental(), nullptr);

  constexpr int kClients = 3;
  constexpr int kJobsPerClient = 6;
  std::mutex records_mutex;
  std::vector<JobRecord> records;

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client{socket_path};
      for (int j = 0; j < kJobsPerClient; ++j) {
        JobRecord record;
        if (j % 2 == 0) {
          record.program = check_only_program(wan);
        } else {
          // Pending-update checks (modify + check, no fix): the jobs the
          // delta cache answers with leased verdicts.
          const unsigned seed = static_cast<unsigned>(c * 100 + j + 7);
          const Workload workload = perturb_workload(wan, 0.06, seed, "check\n");
          record.program = workload.program;
          record.acl_bodies = workload.acl_bodies;
        }
        const Json submitted = submit_job(client, record.program, record.acl_bodies);
        record.id = submitted.at("job").as_u64();
        {
          const std::lock_guard<std::mutex> lock{records_mutex};
          records.push_back(record);
        }
        // Wait for this job before submitting the next, so the client's
        // stream interleaves with the applier's version bumps.
        Json::Object wait;
        wait.emplace("job", record.id);
        wait.emplace("timeout_ms", std::uint64_t{300000});
        (void)client.call("result", Json{std::move(wait)});
      }
    });
  }

  // The applier: verify a semantically no-op rebind of a rotating slot and
  // deploy it, advancing the head mid-load. Only this thread applies, so
  // every apply lands without a version conflict.
  std::thread applier_thread{[&] {
    Client applier{socket_path};
    for (int round = 0; round < 4; ++round) {
      const topo::AclSlot slot =
          wan.agg_slots[static_cast<std::size_t>(round) % wan.agg_slots.size()];
      const SnapshotPtr head = server.store().head();
      const Workload workload = duplicate_rule_workload(wan, *head->topo, slot);
      const Json submitted = submit_job(applier, workload.program, workload.acl_bodies);
      JobRecord record;
      record.id = submitted.at("job").as_u64();
      record.program = workload.program;
      record.acl_bodies = workload.acl_bodies;
      Json::Object wait;
      wait.emplace("job", record.id);
      wait.emplace("timeout_ms", std::uint64_t{300000});
      const Json result = applier.call("result", Json{std::move(wait)});
      ASSERT_EQ(result.at("status").at("state").as_string(), "done") << result.dump();
      ASSERT_TRUE(result.at("status").at("outcome").at("success").as_bool())
          << "duplicate-rule rebind must verify as consistent";
      Json::Object apply;
      apply.emplace("job", record.id);
      (void)applier.call("apply", Json{std::move(apply)});
      const std::lock_guard<std::mutex> lock{records_mutex};
      records.push_back(std::move(record));
    }
  }};

  for (auto& thread : clients) thread.join();
  applier_thread.join();
  EXPECT_EQ(server.store().head_version(), 5u);  // 4 applies landed

  // Oracle pass: identical verdict and plan from a from-scratch engine.
  Client checker{socket_path};
  for (const auto& record : records) {
    Json::Object wait;
    wait.emplace("job", record.id);
    wait.emplace("timeout_ms", std::uint64_t{300000});
    const Json result = checker.call("result", Json{std::move(wait)});
    ASSERT_TRUE(result.at("done").as_bool()) << "job " << record.id << " never terminated";
    const Json& status = result.at("status");
    ASSERT_EQ(status.at("state").as_string(), "done") << status.dump();

    const SnapshotPtr snapshot = server.store().snapshot(status.at("snapshot").as_u64());
    ASSERT_NE(snapshot, nullptr);
    core::Engine oracle{*snapshot->topo};
    lai::AclLibrary library;
    library.emplace("permit_all", net::Acl::permit_all());
    for (const auto& [name, body] : record.acl_bodies) {
      library.insert_or_assign(name, config::parse_acl_auto(body));
    }
    const core::EngineReport report =
        oracle.run_program(record.program, library, snapshot->traffic);
    EXPECT_EQ(report.success(), status.at("outcome").at("success").as_bool())
        << "job " << record.id;
    EXPECT_EQ(core::format_plan(*snapshot->topo, report.final_update),
              status.at("outcome").at("plan").as_string())
        << "job " << record.id << " plan diverged from the oracle";
  }

  // The load was incremental-serving-shaped: entries were installed, hit,
  // and rebased across the four applies.
  const core::IncrementalStats stats = server.incremental()->stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.rebases, 4u);

  server.request_shutdown();
  server.wait();
  std::filesystem::remove(socket_path);
}

}  // namespace
}  // namespace jinjing::svc
