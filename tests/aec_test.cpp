#include "core/aec.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/fixtures.h"
#include "net/acl_algebra.h"

namespace jinjing::core {
namespace {

using gen::Figure1;

TEST(Aec, Table3ClassesOverEnteringTraffic) {
  // Table 3: [1]={traffic 1,2}, [3]={3,4,5}, [6]={6}, [7]={7}.
  const auto f = gen::make_figure1();
  const topo::ConfigView view{f.topo};
  const auto slots = f.topo.bound_slots();
  const auto classes = acl_equivalence_classes(view, slots, f.traffic);
  ASSERT_EQ(classes.size(), 4u);

  const std::vector<net::PacketSet> expected = {
      Figure1::traffic_class(1) | Figure1::traffic_class(2),
      Figure1::traffic_class(3) | Figure1::traffic_class(4) | Figure1::traffic_class(5),
      Figure1::traffic_class(6),
      Figure1::traffic_class(7),
  };
  for (const auto& want : expected) {
    EXPECT_TRUE(std::any_of(classes.begin(), classes.end(),
                            [&](const net::PacketSet& got) { return got.equals(want); }))
        << "missing AEC " << to_string(want);
  }
}

TEST(Aec, FullUniverseAddsNoExtraClasses) {
  // Over all packets the "everything else" traffic joins the all-permit
  // class, so the count stays 4.
  const auto f = gen::make_figure1();
  const topo::ConfigView view{f.topo};
  const auto classes = acl_equivalence_classes(view, f.topo.bound_slots(),
                                               net::PacketSet::all());
  EXPECT_EQ(classes.size(), 4u);
}

TEST(Aec, ClassesAreDecisionUniform) {
  const auto f = gen::make_figure1();
  const topo::ConfigView view{f.topo};
  const auto slots = f.topo.bound_slots();
  const auto classes = acl_equivalence_classes(view, slots, f.traffic);
  for (const auto& cls : classes) {
    for (const auto slot : slots) {
      const auto permitted = net::permitted_set(view.acl(slot));
      EXPECT_TRUE(permitted.contains(cls) || !permitted.intersects(cls));
    }
  }
}

TEST(Aec, ControlIntentRefinesClasses) {
  // An isolate intent on half of traffic 3's prefix splits the big permit
  // class.
  const auto f = gen::make_figure1();
  lai::ControlIntent intent;
  intent.from = {f.A1};
  intent.to = {f.D3};
  intent.verb = lai::ControlVerb::Isolate;
  net::HyperCube half;
  half.set_interval(net::Field::DstIp, net::parse_prefix("3.0.0.0/9").interval());
  intent.header = net::PacketSet{half};

  const topo::ConfigView view{f.topo};
  const auto without = acl_equivalence_classes(view, f.topo.bound_slots(), f.traffic);
  const auto with = acl_equivalence_classes(view, f.topo.bound_slots(), f.traffic, {intent});
  EXPECT_EQ(with.size(), without.size() + 1);
}

TEST(Dec, SplitsTable3Class1ByRouting) {
  // §5.3: [1]_AEC (traffic 1-2) splits into [1]_DEC and [2]_DEC.
  const auto f = gen::make_figure1();
  const auto aec1 = Figure1::traffic_class(1) | Figure1::traffic_class(2);
  const auto decs = dataplane_equivalence_classes(f.topo, f.scope, aec1);
  ASSERT_EQ(decs.size(), 2u);
  EXPECT_TRUE(std::any_of(decs.begin(), decs.end(), [](const net::PacketSet& s) {
    return s.equals(Figure1::traffic_class(1));
  }));
  EXPECT_TRUE(std::any_of(decs.begin(), decs.end(), [](const net::PacketSet& s) {
    return s.equals(Figure1::traffic_class(2));
  }));
}

TEST(Dec, RoutingUniformClassStaysWhole) {
  const auto f = gen::make_figure1();
  const auto decs = dataplane_equivalence_classes(f.topo, f.scope, Figure1::traffic_class(7));
  ASSERT_EQ(decs.size(), 1u);
  EXPECT_TRUE(decs[0].equals(Figure1::traffic_class(7)));
}

}  // namespace
}  // namespace jinjing::core
