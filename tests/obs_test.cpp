// Observability core: counter exactness under contention, histogram bucket
// placement, span nesting, export formats, and the disabled fast path
// (no installed registry must mean no work and no allocations).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#include "core/checker.h"
#include "gen/scenario.h"
#include "obs/stats.h"
#include "obs/trace.h"

// Counts every (non-aligned) global allocation in the test binary so the
// disabled-path test can assert obs helpers allocate nothing.
namespace {
std::atomic<std::size_t> g_alloc_calls{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace jinjing {
namespace {

TEST(StatsRegistry, CountersAreExactUnderConcurrency) {
  obs::StatsRegistry registry;
  const obs::ScopedRegistry installed{registry};

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::count(obs::Counter::SmtQueries);
        obs::count(obs::Counter::ExecutorTasks, 3);
        obs::observe(obs::Histogram::SmtSolveMicros,
                     static_cast<std::uint64_t>(i % 16));
        obs::gauge_max(obs::Gauge::BddNodes, static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& worker : workers) worker.join();

  EXPECT_EQ(registry.total(obs::Counter::SmtQueries),
            std::uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(registry.total(obs::Counter::ExecutorTasks),
            std::uint64_t{3} * kThreads * kPerThread);
  EXPECT_EQ(registry.total(obs::Counter::SmtTimeouts), 0u);
  EXPECT_EQ(registry.gauge(obs::Gauge::BddNodes), std::uint64_t{kPerThread - 1});

  std::uint64_t per_thread_sum = 0;
  for (int i = 0; i < kPerThread; ++i) per_thread_sum += i % 16;
  const auto snapshot = registry.histogram(obs::Histogram::SmtSolveMicros);
  EXPECT_EQ(snapshot.count, std::uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(snapshot.sum, std::uint64_t{kThreads} * per_thread_sum);
}

TEST(StatsRegistry, HistogramBucketsArePowerOfTwo) {
  obs::StatsRegistry registry;
  // Bucket i counts values of bit width i: {0} -> 0, {1} -> 1, {2,3} -> 2,
  // [4,7] -> 3, ..., so cumulative(le = 2^i - 1) is exact.
  registry.observe(obs::Histogram::SmtSolveMicros, 0);
  registry.observe(obs::Histogram::SmtSolveMicros, 1);
  registry.observe(obs::Histogram::SmtSolveMicros, 2);
  registry.observe(obs::Histogram::SmtSolveMicros, 3);
  registry.observe(obs::Histogram::SmtSolveMicros, 4);
  registry.observe(obs::Histogram::SmtSolveMicros, 1023);
  registry.observe(obs::Histogram::SmtSolveMicros, 1024);

  const auto snapshot = registry.histogram(obs::Histogram::SmtSolveMicros);
  EXPECT_EQ(snapshot.buckets[0], 1u);
  EXPECT_EQ(snapshot.buckets[1], 1u);
  EXPECT_EQ(snapshot.buckets[2], 2u);
  EXPECT_EQ(snapshot.buckets[3], 1u);
  EXPECT_EQ(snapshot.buckets[10], 1u);
  EXPECT_EQ(snapshot.buckets[11], 1u);
  EXPECT_EQ(snapshot.count, 7u);
  EXPECT_EQ(snapshot.sum, 0u + 1 + 2 + 3 + 4 + 1023 + 1024);

  // Untouched histograms stay empty.
  EXPECT_EQ(registry.histogram(obs::Histogram::ExecutorQueueDepth).count, 0u);
}

TEST(StatsRegistry, GaugeKeepsHighWaterMark) {
  obs::StatsRegistry registry;
  registry.set_max(obs::Gauge::BddNodes, 10);
  registry.set_max(obs::Gauge::BddNodes, 4);
  EXPECT_EQ(registry.gauge(obs::Gauge::BddNodes), 10u);
  registry.set_max(obs::Gauge::BddNodes, 11);
  EXPECT_EQ(registry.gauge(obs::Gauge::BddNodes), 11u);
}

TEST(TraceSpan, NestedSpansAreContained) {
  obs::StatsRegistry registry;
  {
    const obs::ScopedRegistry installed{registry};
    const obs::TraceSpan outer{obs::Span::EngineCheck};
    {
      const obs::TraceSpan inner{obs::Span::CheckerPlan};
      // Make the inner span non-instant so containment is meaningful.
      const std::uint64_t start = registry.now_us();
      while (registry.now_us() == start) {
      }
    }
  }

  const auto events = registry.trace_events();
  ASSERT_EQ(events.size(), 2u);
  // Spans record at destruction: inner closes first.
  const auto& inner = events[0];
  const auto& outer = events[1];
  EXPECT_EQ(inner.name, obs::Span::CheckerPlan);
  EXPECT_EQ(outer.name, obs::Span::EngineCheck);
  EXPECT_GE(inner.start_us, outer.start_us);
  EXPECT_LE(inner.start_us + inner.dur_us, outer.start_us + outer.dur_us);
  EXPECT_EQ(inner.tid, outer.tid);
}

TEST(TraceSpan, ThreadsGetDistinctTids) {
  obs::StatsRegistry registry;
  {
    const obs::ScopedRegistry installed{registry};
    std::thread a{[] { const obs::TraceSpan span{obs::Span::SmtQuery}; }};
    a.join();
    std::thread b{[] { const obs::TraceSpan span{obs::Span::SmtQuery}; }};
    b.join();
  }
  const auto events = registry.trace_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(TraceSpan, EventsSurviveThreadExit) {
  // Per-thread buffers are shared_ptr-owned: a worker that dies before the
  // export must not lose its events.
  obs::StatsRegistry registry;
  {
    const obs::ScopedRegistry installed{registry};
    std::thread worker{[] {
      for (int i = 0; i < 5; ++i) {
        const obs::TraceSpan span{obs::Span::ExecutorRun};
      }
    }};
    worker.join();
  }
  EXPECT_EQ(registry.trace_events().size(), 5u);
}

TEST(ScopedRegistry, InstallsAndRestores) {
  ASSERT_EQ(obs::StatsRegistry::current(), nullptr);
  obs::StatsRegistry a;
  obs::StatsRegistry b;
  {
    const obs::ScopedRegistry install_a{a};
    EXPECT_EQ(obs::StatsRegistry::current(), &a);
    {
      const obs::ScopedRegistry install_b{b};
      EXPECT_EQ(obs::StatsRegistry::current(), &b);
      obs::count(obs::Counter::PlanBuilds);
    }
    EXPECT_EQ(obs::StatsRegistry::current(), &a);
    obs::count(obs::Counter::PlanBuilds);
  }
  EXPECT_EQ(obs::StatsRegistry::current(), nullptr);
  EXPECT_EQ(a.total(obs::Counter::PlanBuilds), 1u);
  EXPECT_EQ(b.total(obs::Counter::PlanBuilds), 1u);
}

TEST(ScopedRegistry, SurvivesOutOfOrderDestruction) {
  // Servers restart independently, so scopes do not nest: destroying an
  // older scope while a newer one is live must keep the newer registry
  // installed, and destroying the newer one must never re-install a
  // registry whose scope is already gone.
  ASSERT_EQ(obs::StatsRegistry::current(), nullptr);
  obs::StatsRegistry a;
  obs::StatsRegistry b;
  obs::StatsRegistry c;
  auto install_a = std::make_unique<obs::ScopedRegistry>(a);
  auto install_b = std::make_unique<obs::ScopedRegistry>(b);
  install_a.reset();  // the older scope dies first
  EXPECT_EQ(obs::StatsRegistry::current(), &b);
  auto install_c = std::make_unique<obs::ScopedRegistry>(c);
  install_b.reset();  // a middle scope dies while a newer one is live
  EXPECT_EQ(obs::StatsRegistry::current(), &c);
  obs::count(obs::Counter::PlanBuilds);
  install_c.reset();
  EXPECT_EQ(obs::StatsRegistry::current(), nullptr);
  EXPECT_EQ(c.total(obs::Counter::PlanBuilds), 1u);
}

TEST(DisabledPath, NoRegistryMeansNoCountsAndNoAllocations) {
  ASSERT_EQ(obs::StatsRegistry::current(), nullptr);
  const std::size_t before = g_alloc_calls.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    obs::count(obs::Counter::SmtQueries);
    obs::count(obs::Counter::ExecutorSteals, 7);
    obs::gauge_max(obs::Gauge::BddNodes, 123);
    obs::observe(obs::Histogram::SmtSolveMicros, 55);
    const obs::TraceSpan span{obs::Span::SmtQuery};
  }
  EXPECT_EQ(g_alloc_calls.load(std::memory_order_relaxed), before);
}

TEST(Exports, PrometheusTextFormat) {
  obs::StatsRegistry registry;
  registry.add(obs::Counter::SmtQueries, 5);
  registry.set_max(obs::Gauge::BddNodes, 17);
  registry.observe(obs::Histogram::SmtSolveMicros, 3);
  registry.observe(obs::Histogram::SmtSolveMicros, 9);

  std::ostringstream out;
  registry.write_prometheus(out);
  const std::string text = out.str();

  EXPECT_NE(text.find("# TYPE jinjing_smt_queries_total counter\n"
                      "jinjing_smt_queries_total 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE jinjing_bdd_nodes gauge\njinjing_bdd_nodes 17\n"),
            std::string::npos);
  // Cumulative buckets: le="3" sees the 3, le="15" sees both observations.
  EXPECT_NE(text.find("jinjing_smt_solve_micros_bucket{le=\"3\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("jinjing_smt_solve_micros_bucket{le=\"15\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("jinjing_smt_solve_micros_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("jinjing_smt_solve_micros_sum 12\n"), std::string::npos);
  EXPECT_NE(text.find("jinjing_smt_solve_micros_count 2\n"), std::string::npos);
  // The delta-refinement telemetry is part of the export surface.
  EXPECT_NE(text.find("jinjing_fec_delta_splits_total "), std::string::npos);
  EXPECT_NE(text.find("jinjing_fec_delta_reused_atoms_total "), std::string::npos);
  EXPECT_NE(text.find("jinjing_fec_delta_rebuilds_total "), std::string::npos);
  EXPECT_NE(text.find("jinjing_fec_delta_chain_len_count "), std::string::npos);
  // Every counter appears, even untouched ones.
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    const auto name = to_string(static_cast<obs::Counter>(i));
    EXPECT_NE(text.find("jinjing_" + std::string(name) + "_total "),
              std::string::npos)
        << name;
  }
}

TEST(Exports, ChromeTraceFormat) {
  obs::StatsRegistry registry;
  {
    const obs::ScopedRegistry installed{registry};
    const obs::TraceSpan span{obs::Span::FixSearch};
  }
  std::ostringstream out;
  registry.write_chrome_trace(out);
  const std::string text = out.str();
  EXPECT_EQ(text.find("{\"displayTimeUnit\": \"ms\", \"traceEvents\": ["), 0u)
      << text;
  EXPECT_NE(text.find("\"name\": \"fix.search\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\": \"jinjing\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(text.find("\"pid\": 1"), std::string::npos);
  EXPECT_EQ(text.rfind("]}\n"), text.size() - 3);
}

TEST(Exports, JsonObjectHasAllSections) {
  obs::StatsRegistry registry;
  registry.add(obs::Counter::FecCacheHits, 2);
  std::ostringstream out;
  registry.write_json(out, "");
  const std::string text = out.str();
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("\"gauges\""), std::string::npos);
  EXPECT_NE(text.find("\"histograms\""), std::string::npos);
  EXPECT_NE(text.find("\"fec_cache_hits\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"smt_solve_micros\": {\"count\": 0, \"sum\": 0}"),
            std::string::npos);
}

// The pipeline must behave identically whether or not a registry is
// installed: observability is read-only.
TEST(DisabledPath, CheckerResultsMatchEnabledRun) {
  gen::WanParams params;
  params.cores = 2;
  params.aggs = 2;
  params.cells = 2;
  params.gateways_per_cell = 2;
  params.prefixes_per_gateway = 2;
  params.rules_per_acl = 10;
  params.seed = 42;
  const auto wan = gen::make_wan(params);
  const auto update = gen::perturb_rules(wan, 0.05, 42);

  const auto run_check = [&] {
    smt::SmtContext smt;
    core::CheckOptions options;
    options.stop_at_first = false;
    core::Checker checker{smt, wan.topo, wan.scope, options};
    return checker.check(update, wan.traffic);
  };

  ASSERT_EQ(obs::StatsRegistry::current(), nullptr);
  const auto plain = run_check();

  obs::StatsRegistry registry;
  const obs::ScopedRegistry installed{registry};
  const auto observed = run_check();

  EXPECT_EQ(plain.consistent, observed.consistent);
  ASSERT_EQ(plain.violations.size(), observed.violations.size());
  for (std::size_t i = 0; i < plain.violations.size(); ++i) {
    EXPECT_EQ(plain.violations[i].witness, observed.violations[i].witness);
    EXPECT_EQ(plain.violations[i].path_index, observed.violations[i].path_index);
  }
  EXPECT_EQ(plain.fec_count, observed.fec_count);
  EXPECT_EQ(plain.smt_queries, observed.smt_queries);

  // And the observed run actually recorded the pipeline.
  EXPECT_GT(registry.total(obs::Counter::SmtQueries), 0u);
  EXPECT_GT(registry.total(obs::Counter::PlanBuilds), 0u);
  EXPECT_GT(registry.total(obs::Counter::ObligationsPlanned), 0u);
  EXPECT_FALSE(registry.trace_events().empty());
}

}  // namespace
}  // namespace jinjing
