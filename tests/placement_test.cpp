#include "core/placement.h"

#include <gtest/gtest.h>

#include "gen/fixtures.h"

namespace jinjing::core {
namespace {

using gen::Figure1;

MigrationSpec figure1_migration(const gen::Figure1& f) {
  MigrationSpec spec;
  spec.sources = f.migration_sources();
  spec.targets = f.migration_targets();
  return spec;
}

/// The Table 3 classes in a fixed order: [1], [3], [6], [7].
std::vector<net::PacketSet> table3_classes() {
  return {
      Figure1::traffic_class(1) | Figure1::traffic_class(2),
      Figure1::traffic_class(3) | Figure1::traffic_class(4) | Figure1::traffic_class(5),
      Figure1::traffic_class(6),
      Figure1::traffic_class(7),
  };
}

TEST(Placement, Figure1MigrationMatchesTable4Decisions) {
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  PlacementSolver solver{smt, f.topo, f.scope};
  const auto result = solver.solve(figure1_migration(f), table3_classes());

  ASSERT_TRUE(result.success);
  // [3], [6], [7] solve at AEC level; [1] needs DECs (§5.3).
  EXPECT_EQ(result.aec_solutions.size(), 3u);
  ASSERT_TRUE(result.dec_solutions.contains(0));
  EXPECT_FALSE(result.aec_solutions.contains(0));

  const topo::AclSlot c1{f.C1, topo::Dir::In};
  const topo::AclSlot c2{f.C2, topo::Dir::In};
  const topo::AclSlot d1{f.D1, topo::Dir::In};

  // Table 4b row [3]: permit everywhere.
  const auto& sol3 = result.aec_solutions.at(1);
  EXPECT_TRUE(sol3.decision.at(c1));
  EXPECT_TRUE(sol3.decision.at(c2));
  EXPECT_TRUE(sol3.decision.at(d1));

  // §5.2: class [6] must be denied on all target interfaces.
  const auto& sol6 = result.aec_solutions.at(2);
  EXPECT_FALSE(sol6.decision.at(c1));
  EXPECT_FALSE(sol6.decision.at(c2));
  EXPECT_FALSE(sol6.decision.at(d1));

  // Table 4b row [7]: deny at C1, permit at C2 and D1.
  const auto& sol7 = result.aec_solutions.at(3);
  EXPECT_FALSE(sol7.decision.at(c1));
  EXPECT_TRUE(sol7.decision.at(c2));
  EXPECT_TRUE(sol7.decision.at(d1));

  // §5.3/§5.4: [1]_DEC permits everywhere; [2]_DEC is denied at C2.
  const auto& decs = result.dec_solutions.at(0);
  ASSERT_EQ(decs.size(), 2u);
  for (const auto& dec : decs) {
    EXPECT_TRUE(dec.dec_level);
    EXPECT_TRUE(dec.decision.at(d1));
    EXPECT_TRUE(dec.decision.at(c1));
    if (dec.cls.equals(Figure1::traffic_class(2))) {
      EXPECT_FALSE(dec.decision.at(c2)) << "[2]_DEC must be denied at C2";
    } else {
      ASSERT_TRUE(dec.cls.equals(Figure1::traffic_class(1)));
      EXPECT_TRUE(dec.decision.at(c2));
    }
  }
}

TEST(Placement, EmptyTargetsUnsolvableWhenChangeNeeded) {
  // Removing A1's ACL with no targets cannot preserve traffic 6 isolation.
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  PlacementSolver solver{smt, f.topo, f.scope};
  MigrationSpec spec;
  spec.sources = {topo::AclSlot{f.A1, topo::Dir::In}};
  const auto result = solver.solve(spec, {Figure1::traffic_class(6)});
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(result.unsolved.empty());
}

TEST(Placement, NoOpMigrationSolvesTrivially) {
  // No sources, no targets, classes already consistent: nothing to solve,
  // success with empty decisions.
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  PlacementSolver solver{smt, f.topo, f.scope};
  const auto result = solver.solve({}, table3_classes());
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.aec_solutions.size(), 4u);
}

TEST(Placement, ControlOpenForcesPermitOnTargets) {
  // generate with control (§6): open traffic 6 from A1 to C3, with targets
  // on the egress side; A1's deny moves out of the way as a source.
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  PlacementSolver solver{smt, f.topo, f.scope};

  lai::ControlIntent open6;
  open6.from = {f.A1};
  open6.to = {f.C3};
  open6.verb = lai::ControlVerb::Open;
  open6.header = Figure1::traffic_class(6);

  MigrationSpec spec;
  spec.sources = {topo::AclSlot{f.A1, topo::Dir::In}};
  spec.targets = {topo::AclSlot{f.A3, topo::Dir::Out}, topo::AclSlot{f.A4, topo::Dir::Out},
                  topo::AclSlot{f.A2, topo::Dir::Out}};

  const auto result = solver.solve(spec, {Figure1::traffic_class(6)}, {open6});
  ASSERT_TRUE(result.success);
  // At AEC level Equation 10 ranges over the topological path p1 =
  // <A1,A3,C1,C4,D2,D3> too, which demands D(A3)=deny while the C3 path
  // demands D(A3)=permit — unsolvable, so the class drops to DEC level
  // (§5.3), where p1 is pruned as unroutable for traffic 6.
  EXPECT_TRUE(result.aec_solutions.empty());
  ASSERT_TRUE(result.dec_solutions.contains(0));
  const auto& decs = result.dec_solutions.at(0);
  ASSERT_EQ(decs.size(), 1u);
  const auto& sol = decs.front();
  // A3 (towards C3) must permit 6; A4 (towards D3) must deny to preserve
  // the original deny on p0.
  EXPECT_TRUE(sol.decision.at({f.A3, topo::Dir::Out}));
  EXPECT_FALSE(sol.decision.at({f.A4, topo::Dir::Out}));
}

}  // namespace
}  // namespace jinjing::core
