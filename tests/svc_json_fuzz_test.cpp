// Adversarial framing for the service's JSON layer.
//
// The server reads newline-delimited requests from untrusted clients, so
// the parser and the request path must survive anything a broken or hostile
// client can put on the wire: truncated documents, flipped bytes, absurd
// nesting, invalid UTF-8, megabyte tokens, NULs. The contract under test is
// narrow and absolute — Json::parse either returns a value or throws
// JsonError, and the server answers every line with exactly one reply line
// (or drops the connection) and keeps serving well-formed clients after.
// The sanitizer CI jobs run this binary, so any out-of-bounds read or leak
// on these paths fails loudly.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <random>
#include <string>

#include "config/topology_format.h"
#include "gen/wan.h"
#include "svc/client.h"
#include "svc/endpoint.h"
#include "svc/json.h"
#include "svc/server.h"

namespace jinjing {
namespace {

using svc::Json;
using svc::JsonError;

/// parse() must return a value or throw JsonError — nothing else. Returns
/// whether it parsed (for distribution sanity checks).
bool parse_survives(const std::string& text) {
  try {
    const Json value = Json::parse(text);
    // A successful parse must round-trip through its own dump.
    (void)Json::parse(value.dump());
    return true;
  } catch (const JsonError&) {
    return false;
  }
}

TEST(JsonFuzzTest, MutatedDocumentsNeverCrashTheParser) {
  const std::string seeds[] = {
      R"({"id":1,"method":"submit","params":{"program":"check\n","acls":{"a":"permit any"}}})",
      R"({"id":2,"method":"result","params":{"job":7,"timeout_ms":100}})",
      R"([1,2.5,-3e10,true,false,null,"é\n\"x\"",[],{}])",
      R"({"nested":{"a":[{"b":"c"}]},"n":18446744073709551615})",
  };
  std::mt19937 rng{20260808};
  std::size_t parsed = 0, rejected = 0;
  for (int round = 0; round < 2000; ++round) {
    std::string text = seeds[rng() % std::size(seeds)];
    switch (rng() % 4) {
      case 0:  // truncate anywhere, including mid-escape and mid-UTF-8
        text = text.substr(0, rng() % (text.size() + 1));
        break;
      case 1: {  // flip a few bytes to arbitrary values (NUL included)
        for (int i = 0; i < 3; ++i) {
          text[rng() % text.size()] = static_cast<char>(rng() % 256);
        }
        break;
      }
      case 2: {  // splice in an invalid UTF-8 / control-character run
        const char junk[] = "\xc3\x28\xa0\xff\xfe\x01\x1f";
        text.insert(rng() % (text.size() + 1), junk, sizeof(junk) - 1);
        break;
      }
      case 3:  // duplicate a chunk, making overlong / unbalanced documents
        text += text.substr(rng() % text.size());
        break;
    }
    (parse_survives(text) ? parsed : rejected) += 1;
  }
  // The mutators must actually produce both outcomes, or they test nothing.
  EXPECT_GT(parsed + rejected, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(JsonFuzzTest, DeepNestingIsRejectedNotOverflowed) {
  // 100k opening brackets: a recursive-descent parser without a depth cap
  // would exhaust the stack here, which ASan reports as a crash.
  const std::string deep_array(100000, '[');
  EXPECT_THROW((void)Json::parse(deep_array), JsonError);
  std::string deep_object;
  for (int i = 0; i < 50000; ++i) deep_object += R"({"a":)";
  EXPECT_THROW((void)Json::parse(deep_object), JsonError);
  // Balanced but still too deep is rejected the same way.
  const std::string balanced = std::string(1000, '[') + std::string(1000, ']');
  EXPECT_THROW((void)Json::parse(balanced), JsonError);
}

TEST(JsonFuzzTest, HugeTokensParseOrFailCleanly) {
  const std::string huge_string = "\"" + std::string(2 << 20, 'x') + "\"";
  EXPECT_TRUE(parse_survives(huge_string));
  const std::string huge_number = "1" + std::string(4096, '0');
  (void)parse_survives(huge_number);  // either verdict, no crash
  const std::string unterminated = "\"" + std::string(2 << 20, 'x');
  EXPECT_FALSE(parse_survives(unterminated));
}

/// A raw connection speaking garbage at a live server. The endpoint may be
/// a Unix socket path or a TCP host:port (the shared CLI endpoint form).
class RawConnection {
 public:
  explicit RawConnection(const std::string& endpoint) {
    try {
      fd_ = svc::dial(svc::parse_endpoint(endpoint));
    } catch (const svc::EndpointError& e) {
      throw std::runtime_error(e.what());
    }
  }
  ~RawConnection() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      // MSG_NOSIGNAL: a server-side close mid-send must surface as an error
      // return (acceptable — the peer may hang up on garbage), not SIGPIPE.
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return;
      off += static_cast<std::size_t>(n);
    }
  }

  /// Reads one reply line; empty string when the server closed instead.
  std::string read_line() {
    std::string line;
    char c = 0;
    while (true) {
      const ssize_t n = ::read(fd_, &c, 1);
      if (n <= 0) return {};
      if (c == '\n') return line;
      line.push_back(c);
    }
  }

 private:
  int fd_ = -1;
};

class SvcFuzzFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const gen::Wan wan = gen::make_wan(gen::small_wan());
    config::NetworkFile network;
    network.topo = wan.topo;
    network.traffic = wan.traffic;
    svc::ServerOptions options;
    options.socket_path =
        (std::filesystem::temp_directory_path() /
         ("jinjing_json_fuzz_" + std::to_string(::getpid()) + ".sock"))
            .string();
    options.workers = 2;
    server_ = std::make_unique<svc::Server>(std::move(network), options);
    server_->start();
  }

  void TearDown() override {
    server_->request_shutdown();
    server_->wait();
    std::filesystem::remove(server_->socket_path());
  }

  /// Every adversarial exchange ends with this: the server still answers a
  /// fresh well-formed client, so no frame wedged or killed it.
  void expect_server_healthy() {
    svc::Client client{server_->socket_path()};
    const Json info = client.call("info");
    EXPECT_GE(info.at("head_version").as_u64(), 1u);
  }

  std::unique_ptr<svc::Server> server_;
};

TEST_F(SvcFuzzFixture, GarbageLinesGetOneErrorReplyEach) {
  RawConnection conn{server_->socket_path()};
  const std::string lines[] = {
      "not json at all\n",
      "{\"id\":1,\"method\":\n",          // truncated document, framed
      "{}\n",                              // valid JSON, invalid request
      "{\"id\":4}\n",                      // missing method
      "[1,2,3]\n",                         // wrong top-level type
      std::string("\x00\x01\xff", 3) + "\n",
  };
  for (const std::string& line : lines) {
    conn.send(line);
    const std::string reply = conn.read_line();
    ASSERT_FALSE(reply.empty()) << "server closed instead of replying to: " << line;
    const Json parsed = Json::parse(reply);
    EXPECT_NE(parsed.get("error"), nullptr) << reply;
  }
  expect_server_healthy();
}

TEST_F(SvcFuzzFixture, TruncatedFrameThenDisconnectIsHarmless) {
  {
    RawConnection conn{server_->socket_path()};
    conn.send(R"({"id":1,"method":"submit","params":{"program":")");
    // No newline, no close handshake: the connection just goes away.
  }
  expect_server_healthy();
}

TEST_F(SvcFuzzFixture, MegabyteLineIsAnsweredOrRefusedCleanly) {
  RawConnection conn{server_->socket_path()};
  std::string line = R"({"id":1,"method":"submit","params":{"program":")";
  line += std::string(2 << 20, 'x');
  line += "\"}}\n";
  conn.send(line);
  const std::string reply = conn.read_line();
  // Either one error reply (bad program) or a clean close (frame cap) is
  // acceptable; a hang or crash is not, and ASan vets the copies.
  if (!reply.empty()) {
    const Json parsed = Json::parse(reply);
    EXPECT_TRUE(parsed.get("error") != nullptr || parsed.get("result") != nullptr) << reply;
  }
  expect_server_healthy();
}

TEST_F(SvcFuzzFixture, SeededMutationBarrage) {
  std::mt19937 rng{424242};
  const std::string valid =
      R"({"id":9,"method":"status","params":{"job":1}})";
  for (int round = 0; round < 200; ++round) {
    RawConnection conn{server_->socket_path()};
    std::string line = valid;
    for (int i = 0; i < 4; ++i) line[rng() % line.size()] = static_cast<char>(rng() % 256);
    // Strip embedded newlines so this stays one frame.
    for (char& c : line) {
      if (c == '\n') c = ' ';
    }
    conn.send(line + "\n");
    const std::string reply = conn.read_line();
    ASSERT_FALSE(reply.empty()) << "no reply to mutated line: " << line;
    EXPECT_NO_THROW((void)Json::parse(reply)) << reply;
  }
  expect_server_healthy();
}

// ------------------------------------------------------ TCP + auth framing

constexpr const char* kFuzzToken = "fuzz-secret";

/// The same adversarial contract on the network transport: until a
/// connection authenticates, it gets one small line and one terse 401 —
/// nothing that leaks which part of the handshake failed, and nothing that
/// lets an unauthenticated peer hold memory or a thread for long.
class SvcTcpFuzzFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const gen::Wan wan = gen::make_wan(gen::small_wan());
    config::NetworkFile network;
    network.topo = wan.topo;
    network.traffic = wan.traffic;
    svc::ServerOptions options;
    options.listen_address = "127.0.0.1:0";
    options.auth_token = kFuzzToken;
    options.workers = 2;
    server_ = std::make_unique<svc::Server>(std::move(network), options);
    server_->start();
  }

  void TearDown() override {
    server_->request_shutdown();
    server_->wait();
  }

  /// A fresh authenticated client still gets answers — the garbage neither
  /// wedged nor killed the listener.
  void expect_server_healthy() {
    svc::ClientOptions options;
    options.token = kFuzzToken;
    svc::Client client{server_->listen_endpoint(), options};
    const Json info = client.call("info");
    EXPECT_GE(info.at("head_version").as_u64(), 1u);
  }

  std::unique_ptr<svc::Server> server_;
};

TEST_F(SvcTcpFuzzFixture, GarbageBeforeAuthGetsOneTerse401AndAHangup) {
  const std::string lines[] = {
      "not json at all\n",
      "{\"id\":1,\"method\":\"submit\",\"params\":{\"program\":\"check\\n\"}}\n",
      "{\"id\":1,\"method\":\"auth\"}\n",  // auth call, no token
      std::string("\x00\x01\xff", 3) + "\n",
  };
  for (const std::string& line : lines) {
    RawConnection conn{server_->listen_endpoint()};
    conn.send(line);
    const std::string reply = conn.read_line();
    ASSERT_FALSE(reply.empty()) << "no 401 for: " << line;
    const Json parsed = Json::parse(reply);
    EXPECT_EQ(parsed.at("error").at("code").as_u64(), 401u) << reply;
    // One terse line, then the hangup.
    EXPECT_TRUE(conn.read_line().empty()) << line;
  }
  expect_server_healthy();
}

TEST_F(SvcTcpFuzzFixture, WrongTokenIsRejectedWithoutDetail) {
  RawConnection conn{server_->listen_endpoint()};
  conn.send(R"({"id":1,"method":"auth","params":{"token":"fuzz-secret-but-wrong"}})"
            "\n");
  const std::string reply = conn.read_line();
  ASSERT_FALSE(reply.empty());
  EXPECT_EQ(Json::parse(reply).at("error").at("code").as_u64(), 401u) << reply;
  // The rejection names neither the method nor which part failed.
  EXPECT_EQ(reply.find("token"), std::string::npos) << reply;
  EXPECT_TRUE(conn.read_line().empty());

  // The typed client surfaces the same rejection as a connect error.
  svc::ClientOptions options;
  options.token = "also-wrong";
  options.max_retries = 0;
  EXPECT_THROW((svc::Client{server_->listen_endpoint(), options}), svc::ClientError);
  expect_server_healthy();
}

TEST_F(SvcTcpFuzzFixture, OversizedPreAuthLineDropsTheConnection) {
  RawConnection conn{server_->listen_endpoint()};
  // 64KB with no newline: far past the few-KB pre-auth budget. The server
  // must hang up without buffering it all or replying.
  conn.send(std::string(64 << 10, 'a'));
  EXPECT_TRUE(conn.read_line().empty());
  expect_server_healthy();
}

TEST_F(SvcTcpFuzzFixture, MidHandshakeDisconnectIsHarmless) {
  {
    RawConnection conn{server_->listen_endpoint()};
    conn.send(R"({"id":1,"method":"auth","params":{"tok)");
    // No newline, no close handshake: the peer just vanishes.
  }
  expect_server_healthy();
}

TEST_F(SvcTcpFuzzFixture, PostAuthGarbageGetsPerLineErrorsNotAHangup) {
  RawConnection conn{server_->listen_endpoint()};
  conn.send(std::string(R"({"id":1,"method":"auth","params":{"token":")") + kFuzzToken +
            "\"}}\n");
  const std::string ok = conn.read_line();
  ASSERT_NE(ok.find("\"result\""), std::string::npos) << ok;
  // Authenticated, the connection gets the same per-line error contract as
  // the Unix socket — garbage is answered, not dropped.
  conn.send("not json at all\n");
  const std::string reply = conn.read_line();
  ASSERT_FALSE(reply.empty());
  EXPECT_NE(Json::parse(reply).get("error"), nullptr) << reply;
  expect_server_healthy();
}

}  // namespace
}  // namespace jinjing
