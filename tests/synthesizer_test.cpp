#include "core/synthesizer.h"

#include <gtest/gtest.h>

#include "core/generator.h"
#include "gen/fixtures.h"
#include "net/acl_algebra.h"
#include "topo/paths.h"

namespace jinjing::core {
namespace {

using gen::Figure1;

MigrationSpec figure1_migration(const gen::Figure1& f) {
  MigrationSpec spec;
  spec.sources = f.migration_sources();
  spec.targets = f.migration_targets();
  return spec;
}

/// Validity oracle: after applying the generated update, every path's
/// decision on every traffic class is unchanged (exact, set-based).
void expect_reachability_preserved(const gen::Figure1& f, const topo::AclUpdate& update) {
  const topo::ConfigView before{f.topo};
  const topo::ConfigView after{f.topo, &update};
  for (const auto& path : topo::enumerate_paths(f.topo, f.scope)) {
    const auto carried = topo::forwarding_set(f.topo, path) & f.traffic;
    if (carried.is_empty()) continue;
    const auto before_permitted = topo::path_permitted_set(before, path) & carried;
    const auto after_permitted = topo::path_permitted_set(after, path) & carried;
    EXPECT_TRUE(before_permitted.equals(after_permitted))
        << "reachability changed on " << to_string(f.topo, path);
  }
}

class SynthesizerAllOptions : public ::testing::TestWithParam<SynthesisOptions> {};

TEST_P(SynthesizerAllOptions, Figure1MigrationPreservesReachability) {
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  GenerateOptions options;
  options.synthesis = GetParam();
  Generator generator{smt, f.topo, f.scope, options};
  const auto result = generator.generate(figure1_migration(f));
  ASSERT_TRUE(result.success);
  expect_reachability_preserved(f, result.update);
}

INSTANTIATE_TEST_SUITE_P(
    Options, SynthesizerAllOptions,
    ::testing::Values(SynthesisOptions{true, true, true}, SynthesisOptions{false, false, false},
                      SynthesisOptions{true, false, true}, SynthesisOptions{false, true, false},
                      SynthesisOptions{true, true, false}),
    [](const auto& info) {
      return std::string(info.param.group_rules ? "Grp" : "NoGrp") +
             (info.param.minimize_rules ? "Min" : "NoMin") +
             (info.param.use_search_tree ? "Tree" : "NoTree");
    });

TEST(Synthesizer, Table4SynthesizedC1) {
  // Table 4b + §5.4: C1 = deny 6/8, deny 7/8, permit 1/8, permit 2/8,
  // permit all — equivalently (after the §5.5 cover) deny 6/8, deny 7/8,
  // permit all.
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  GenerateOptions options;
  options.universe = f.traffic;
  Generator generator{smt, f.topo, f.scope, options};
  const auto result = generator.generate(figure1_migration(f));
  ASSERT_TRUE(result.success);

  const auto& c1 = result.update.at({f.C1, topo::Dir::In});
  const auto paper_c1 = net::Acl::parse(
      {"deny dst 6.0.0.0/8", "deny dst 7.0.0.0/8", "permit dst 1.0.0.0/8",
       "permit dst 2.0.0.0/8", "permit all"});
  EXPECT_TRUE(net::equivalent_on(c1, paper_c1, f.traffic))
      << to_string(c1);
}

TEST(Synthesizer, Table4SynthesizedC2HasDecInsertion) {
  // §5.4 step 4: C2 denies [2]_DEC — the paper's final C2 is
  // "deny 6/8, permit 7/8, permit 1/8, deny 2/8, permit 2/8, permit all"
  // (the deny 2/8 inserted above the partial permit).
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  GenerateOptions options;
  options.universe = f.traffic;
  Generator generator{smt, f.topo, f.scope, options};
  const auto result = generator.generate(figure1_migration(f));
  ASSERT_TRUE(result.success);

  const auto& c2 = result.update.at({f.C2, topo::Dir::In});
  const auto paper_c2 = net::Acl::parse({"deny dst 6.0.0.0/8", "permit dst 7.0.0.0/8",
                                         "permit dst 1.0.0.0/8", "deny dst 2.0.0.0/8",
                                         "permit dst 2.0.0.0/8", "permit all"});
  EXPECT_TRUE(net::equivalent_on(c2, paper_c2, f.traffic)) << to_string(c2);
  // Concretely: 2.x denied, 1.x/7.x permitted, 6.x denied.
  EXPECT_FALSE(c2.permits(Figure1::traffic_packet(2)));
  EXPECT_FALSE(c2.permits(Figure1::traffic_packet(6)));
  EXPECT_TRUE(c2.permits(Figure1::traffic_packet(1)));
  EXPECT_TRUE(c2.permits(Figure1::traffic_packet(7)));
}

TEST(Synthesizer, Table4SynthesizedD1) {
  // D1 column of Table 4b: deny only [6].
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  GenerateOptions options;
  options.universe = f.traffic;
  Generator generator{smt, f.topo, f.scope, options};
  const auto result = generator.generate(figure1_migration(f));
  ASSERT_TRUE(result.success);

  const auto& d1 = result.update.at({f.D1, topo::Dir::In});
  EXPECT_FALSE(d1.permits(Figure1::traffic_packet(6)));
  for (const int k : {1, 2, 3, 4, 5, 7}) {
    EXPECT_TRUE(d1.permits(Figure1::traffic_packet(k))) << k;
  }
}

TEST(Synthesizer, SourcesBecomePermitAll) {
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  Generator generator{smt, f.topo, f.scope};
  const auto result = generator.generate(figure1_migration(f));
  for (const auto slot : f.migration_sources()) {
    const auto& acl = result.update.at(slot);
    EXPECT_TRUE(net::permitted_set(acl).equals(net::PacketSet::all()));
  }
}

TEST(Synthesizer, MinimizeRulesShrinksOutput) {
  const auto f = gen::make_figure1();

  const auto run = [&](bool minimize) {
    smt::SmtContext smt;
    GenerateOptions options;
    options.universe = f.traffic;
    options.synthesis.minimize_rules = minimize;
    Generator generator{smt, f.topo, f.scope, options};
    return generator.generate(figure1_migration(f));
  };
  const auto full = run(false);
  const auto minimized = run(true);
  ASSERT_TRUE(full.success);
  ASSERT_TRUE(minimized.success);
  EXPECT_LT(minimized.synthesis.emitted_rules, full.synthesis.emitted_rules);
}

TEST(Synthesizer, GroupingShrinksRowCount) {
  const auto f = gen::make_figure1();
  const auto run = [&](bool group) {
    smt::SmtContext smt;
    GenerateOptions options;
    options.synthesis.group_rules = group;
    Generator generator{smt, f.topo, f.scope, options};
    return generator.generate(figure1_migration(f));
  };
  EXPECT_LE(run(true).synthesis.row_count, run(false).synthesis.row_count);
}

TEST(Synthesizer, GenerateReportsPhaseBreakdown) {
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  Generator generator{smt, f.topo, f.scope};
  const auto result = generator.generate(figure1_migration(f));
  EXPECT_EQ(result.aec_count, 4u);
  EXPECT_EQ(result.aec_solved, 3u);
  EXPECT_EQ(result.dec_count, 2u);
  EXPECT_EQ(result.unsolved, 0u);
  EXPECT_GT(result.smt_queries, 0u);
  EXPECT_GE(result.derive_seconds, 0.0);
}

TEST(SynthOpt, GroupingMergesFigure1D2Denies) {
  // §5.5: on D2, "deny 1/8" and "deny 2/8" group into one item.
  const auto acl = net::Acl::parse(
      {"deny dst 1.0.0.0/8", "deny dst 2.0.0.0/8", "permit all"});
  const auto groups = group_rules(acl, true);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].members.size(), 2u);
  EXPECT_EQ(groups[0].action, net::Action::Deny);
}

TEST(SynthOpt, AggressiveGroupingBubblesPastNonOverlapping) {
  // deny 1/8, permit 9/9, deny 2/8: the second deny commutes with the
  // non-overlapping permit and joins the first group.
  const auto acl = net::Acl::parse(
      {"deny dst 1.0.0.0/8", "permit dst 9.0.0.0/8", "deny dst 2.0.0.0/8"});
  EXPECT_EQ(group_rules(acl, true).size(), 2u);
  EXPECT_EQ(group_rules(acl, false).size(), 3u);
}

TEST(SynthOpt, GroupingBlockedByOverlap) {
  // deny 1/8, permit 1.2/16, deny 1.2.3/24: no merging possible.
  const auto acl = net::Acl::parse(
      {"deny dst 1.0.0.0/8", "permit dst 1.2.0.0/16", "deny dst 1.2.3.0/24"});
  EXPECT_EQ(group_rules(acl, true).size(), 3u);
}

TEST(SynthOpt, DstIntervalIndexAgreesWithLinearScan) {
  const auto set = net::permitted_set(net::Acl::parse(
      {"deny dst 1.0.0.0/8", "deny dst 3.0.0.0/8", "deny dst 200.0.0.0/7", "permit all"}));
  const DstIntervalIndex index{set};
  for (const char* probe : {"0.0.0.0/8", "1.0.0.0/8", "1.128.0.0/9", "3.5.0.0/16",
                            "200.0.0.0/8", "201.0.0.0/8", "202.0.0.0/8", "0.0.0.0/0"}) {
    net::HyperCube cube;
    cube.set_interval(net::Field::DstIp, net::parse_prefix(probe).interval());
    const net::PacketSet query{cube};
    EXPECT_EQ(index.intersects(query), set.intersects(query)) << probe;
  }
}

TEST(SynthOpt, MinimizeRowsPreservesTable4bSemantics) {
  // Build the C1 column of Table 4b literally and check the greedy cover
  // emits the denies before the covering permit-all.
  std::vector<SynthRow> rows;
  const auto dst = [](int k) {
    net::HyperCube c;
    c.set_interval(net::Field::DstIp,
                   net::parse_prefix(std::to_string(k) + ".0.0.0/8").interval());
    return net::PacketSet{c};
  };
  rows.push_back({{1, 2, 3}, 1, dst(6), net::Action::Deny});
  rows.push_back({{2, 1, 3}, 1, dst(7), net::Action::Deny});
  rows.push_back({{2, 2, 1}, 1, dst(1), net::Action::Permit});
  rows.push_back({{2, 2, 2}, 1, dst(2), net::Action::Permit});
  rows.push_back({{2, 2, 3}, 1, net::PacketSet::all(), net::Action::Permit});

  const auto emitted = minimize_rows(rows);
  ASSERT_EQ(emitted.size(), 3u);
  EXPECT_EQ(emitted[0].action, net::Action::Deny);
  EXPECT_EQ(emitted[1].action, net::Action::Deny);
  EXPECT_EQ(emitted[2].action, net::Action::Permit);
  EXPECT_TRUE(emitted[2].set.equals(net::PacketSet::all()));
}

}  // namespace
}  // namespace jinjing::core
