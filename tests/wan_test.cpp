#include "gen/wan.h"

#include <gtest/gtest.h>

#include "topo/fec.h"
#include "topo/paths.h"

namespace jinjing::gen {
namespace {

class WanSizes : public ::testing::TestWithParam<WanParams> {};

TEST_P(WanSizes, StructureIsSound) {
  const auto wan = make_wan(GetParam());
  const auto& p = GetParam();
  EXPECT_EQ(wan.cores.size(), p.cores);
  EXPECT_EQ(wan.aggs.size(), p.aggs);
  EXPECT_EQ(wan.gateways.size(), p.cells * p.gateways_per_cell);
  EXPECT_EQ(wan.topo.device_count(), p.cores + p.aggs + wan.gateways.size());
  EXPECT_FALSE(wan.traffic.is_empty());
  EXPECT_GT(total_rules(wan), 0u);
}

TEST_P(WanSizes, EveryGatewayReachableFromEveryCore) {
  const auto wan = make_wan(GetParam());
  const auto paths = topo::enumerate_paths(wan.topo, wan.scope);
  ASSERT_FALSE(paths.empty());
  for (std::size_t g = 0; g < wan.gateways.size(); ++g) {
    const auto dst = wan.gateway_dst_set(g);
    for (const auto entry : wan.core_entry_ifaces) {
      const bool reachable = std::any_of(paths.begin(), paths.end(), [&](const topo::Path& p) {
        return p.entry() == entry && topo::forwarding_set(wan.topo, p).intersects(dst);
      });
      EXPECT_TRUE(reachable) << "gateway " << g << " unreachable from core entry";
    }
  }
}

TEST_P(WanSizes, PeerFabricBypassesIngressAcls) {
  // The intra-cell paths are exactly <pe, host>, with no ACL on either hop.
  const auto wan = make_wan(GetParam());
  const auto paths = topo::enumerate_paths(wan.topo, wan.scope);
  std::size_t peer_paths = 0;
  for (const auto& path : paths) {
    if (path.size() != 2) continue;
    ++peer_paths;
    for (const auto& hop : path.hops()) {
      EXPECT_FALSE(wan.topo.has_acl(hop.slot()));
    }
  }
  EXPECT_EQ(peer_paths, wan.gateways.size());
}

TEST_P(WanSizes, NoFecExplosion) {
  // §4.1/§9: in a well-organized network the FEC count stays small — here
  // bounded by gateways x (cells + 1), far below the 2^n worst case.
  const auto wan = make_wan(GetParam());
  const auto fecs =
      topo::forwarding_equivalence_classes(wan.topo, wan.scope, wan.traffic);
  EXPECT_FALSE(fecs.empty());
  EXPECT_LE(fecs.size(), wan.gateways.size() * (GetParam().cells + 1));
}

TEST_P(WanSizes, DeterministicForSeed) {
  const auto a = make_wan(GetParam());
  const auto b = make_wan(GetParam());
  EXPECT_EQ(total_rules(a), total_rules(b));
  for (const auto slot : a.topo.bound_slots()) {
    EXPECT_EQ(a.topo.acl(slot), b.topo.acl(slot));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WanSizes,
                         ::testing::Values(small_wan(), medium_wan(), large_wan()),
                         [](const auto& info) {
                           switch (info.index) {
                             case 0: return std::string("Small");
                             case 1: return std::string("Medium");
                             default: return std::string("Large");
                           }
                         });

TEST(Wan, SizesAreOrdered) {
  const auto s = make_wan(small_wan());
  const auto m = make_wan(medium_wan());
  const auto l = make_wan(large_wan());
  EXPECT_LT(s.topo.device_count(), m.topo.device_count());
  EXPECT_LT(m.topo.device_count(), l.topo.device_count());
  EXPECT_LT(total_rules(s), total_rules(m));
  EXPECT_LT(total_rules(m), total_rules(l));
}

TEST(Wan, AddressPlanBudgetEnforced) {
  WanParams p;
  p.cells = 60;
  p.gateways_per_cell = 2;
  p.prefixes_per_gateway = 2;
  EXPECT_THROW((void)make_wan(p), std::invalid_argument);
}

}  // namespace
}  // namespace jinjing::gen
