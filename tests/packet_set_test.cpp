#include "net/packet_set.h"

#include <gtest/gtest.h>

#include <random>

namespace jinjing::net {
namespace {

PacketSet dst_set(std::uint64_t lo, std::uint64_t hi) {
  HyperCube c;
  c.set_interval(Field::DstIp, Interval(lo, hi));
  return PacketSet{c};
}

TEST(PacketSet, EmptyAndAll) {
  EXPECT_TRUE(PacketSet::empty().is_empty());
  EXPECT_FALSE(PacketSet::all().is_empty());
  EXPECT_EQ(PacketSet::all().volume(), Volume{1} << 104);
  EXPECT_TRUE(PacketSet::all().complement().is_empty());
  EXPECT_TRUE(PacketSet::empty().complement().equals(PacketSet::all()));
}

TEST(PacketSet, UnionKeepsDisjointInvariantAndVolume) {
  const auto a = dst_set(0, 100);
  const auto b = dst_set(50, 150);
  const auto u = a | b;
  EXPECT_EQ(u.volume(), dst_set(0, 150).volume());
  EXPECT_TRUE(u.equals(dst_set(0, 150)));
  // Internal cubes pairwise disjoint.
  for (std::size_t i = 0; i < u.cubes().size(); ++i) {
    for (std::size_t j = i + 1; j < u.cubes().size(); ++j) {
      EXPECT_FALSE(u.cubes()[i].overlaps(u.cubes()[j]));
    }
  }
}

TEST(PacketSet, IntersectAndSubtract) {
  const auto a = dst_set(0, 100);
  const auto b = dst_set(50, 150);
  EXPECT_TRUE((a & b).equals(dst_set(50, 100)));
  EXPECT_TRUE((a - b).equals(dst_set(0, 49)));
  EXPECT_TRUE((b - a).equals(dst_set(101, 150)));
}

TEST(PacketSet, SubtractSelfIsEmpty) {
  const auto a = dst_set(10, 1000);
  EXPECT_TRUE((a - a).is_empty());
}

TEST(PacketSet, ContainsPacket) {
  const auto s = dst_set(0x01000000, 0x01FFFFFF);  // 1.0.0.0/8
  EXPECT_TRUE(s.contains(packet_to("1.2.3.4")));
  EXPECT_FALSE(s.contains(packet_to("2.0.0.1")));
}

TEST(PacketSet, ContainsSet) {
  EXPECT_TRUE(dst_set(0, 100).contains(dst_set(10, 20)));
  EXPECT_FALSE(dst_set(0, 100).contains(dst_set(90, 110)));
  EXPECT_TRUE(PacketSet::all().contains(dst_set(5, 6)));
  EXPECT_TRUE(dst_set(3, 9).contains(PacketSet::empty()));
}

TEST(PacketSet, SampleOnEmptyThrows) {
  EXPECT_THROW((void)PacketSet::empty().sample(), std::logic_error);
}

TEST(PacketSet, SampleIsMember) {
  const auto s = dst_set(7, 9) | dst_set(100, 200);
  EXPECT_TRUE(s.contains(s.sample()));
}

TEST(PacketSet, IntersectsIsFastOverlapCheck) {
  EXPECT_TRUE(dst_set(0, 10).intersects(dst_set(10, 20)));
  EXPECT_FALSE(dst_set(0, 10).intersects(dst_set(11, 20)));
  EXPECT_FALSE(PacketSet::empty().intersects(PacketSet::all()));
}

// Algebraic laws checked over randomized small sets.
class PacketSetLaws : public ::testing::TestWithParam<unsigned> {
 protected:
  PacketSet random_set(std::mt19937& rng) {
    std::uniform_int_distribution<int> n_cubes(1, 3);
    std::uniform_int_distribution<std::uint64_t> ip(0, 255);
    std::uniform_int_distribution<std::uint64_t> port(0, 15);
    PacketSet s;
    const int n = n_cubes(rng);
    for (int i = 0; i < n; ++i) {
      HyperCube c;
      auto lo = ip(rng), hi = ip(rng);
      if (lo > hi) std::swap(lo, hi);
      c.set_interval(Field::DstIp, Interval(lo, hi));
      auto plo = port(rng), phi = port(rng);
      if (plo > phi) std::swap(plo, phi);
      c.set_interval(Field::DstPort, Interval(plo, phi));
      s = s | PacketSet{c};
    }
    return s;
  }
};

TEST_P(PacketSetLaws, DeMorganAndDistribution) {
  std::mt19937 rng(GetParam());
  const auto a = random_set(rng);
  const auto b = random_set(rng);
  const auto c = random_set(rng);

  // De Morgan: ~(a | b) == ~a & ~b
  EXPECT_TRUE((a | b).complement().equals(a.complement() & b.complement()));
  // a - b == a & ~b
  EXPECT_TRUE((a - b).equals(a & b.complement()));
  // Distribution: a & (b | c) == (a & b) | (a & c)
  EXPECT_TRUE((a & (b | c)).equals((a & b) | (a & c)));
  // Inclusion-exclusion on volumes.
  EXPECT_EQ((a | b).volume() + (a & b).volume(), a.volume() + b.volume());
  // Idempotence.
  EXPECT_TRUE((a | a).equals(a));
  EXPECT_TRUE((a & a).equals(a));
  // Double complement.
  EXPECT_TRUE(a.complement().complement().equals(a));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketSetLaws, ::testing::Range(1u, 21u));


TEST(PacketSetCompact, MergesAdjacentCubes) {
  const auto merged = (dst_set(0, 99) | dst_set(100, 199)).compact();
  EXPECT_EQ(merged.cube_count(), 1u);
  EXPECT_TRUE(merged.equals(dst_set(0, 199)));
}

TEST(PacketSetCompact, DoesNotMergeAcrossGaps) {
  auto gapped = dst_set(0, 99) | dst_set(101, 199);
  const auto before = gapped.cube_count();
  EXPECT_EQ(gapped.compact().cube_count(), before);
}

TEST(PacketSetCompact, DoesNotMergeMultiDimensionDifferences) {
  net::HyperCube a;
  a.set_interval(Field::DstIp, Interval(0, 99));
  a.set_interval(Field::DstPort, Interval(0, 9));
  net::HyperCube b;
  b.set_interval(Field::DstIp, Interval(100, 199));
  b.set_interval(Field::DstPort, Interval(10, 19));
  auto s = PacketSet{a} | PacketSet{b};
  EXPECT_EQ(s.compact().cube_count(), 2u);
}

TEST(PacketSetCompact, CascadesMerges) {
  // Four quarters of a square merge down to one cube.
  net::HyperCube q[4];
  for (int i = 0; i < 4; ++i) {
    q[i].set_interval(Field::DstIp, Interval((i & 1) ? 50 : 0, (i & 1) ? 99 : 49));
    q[i].set_interval(Field::DstPort, Interval((i & 2) ? 50 : 0, (i & 2) ? 99 : 49));
  }
  auto s = PacketSet{q[0]} | PacketSet{q[1]} | PacketSet{q[2]} | PacketSet{q[3]};
  EXPECT_EQ(s.compact().cube_count(), 1u);
}

class PacketSetCompactProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(PacketSetCompactProperty, PreservesSetExactly) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::uint64_t> v(0, 63);
  PacketSet s;
  for (int i = 0; i < 6; ++i) {
    net::HyperCube c;
    auto a = v(rng), b = v(rng);
    if (a > b) std::swap(a, b);
    c.set_interval(Field::DstIp, Interval(a, b));
    auto p = v(rng), q = v(rng);
    if (p > q) std::swap(p, q);
    c.set_interval(Field::SrcPort, Interval(p, q));
    s = s | PacketSet{c};
  }
  PacketSet compacted = s;
  compacted.compact();
  EXPECT_TRUE(compacted.equals(s));
  EXPECT_LE(compacted.cube_count(), s.cube_count());
  EXPECT_EQ(compacted.volume(), s.volume());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketSetCompactProperty, ::testing::Range(1u, 16u));

}  // namespace
}  // namespace jinjing::net
