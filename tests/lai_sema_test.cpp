#include "lai/sema.h"

#include <gtest/gtest.h>

#include "gen/fixtures.h"
#include "lai/parser.h"

namespace jinjing::lai {
namespace {

AclLibrary running_example_library() {
  AclLibrary lib;
  lib.emplace("A1p", net::Acl::parse({"deny dst 1.0.0.0/8", "deny dst 2.0.0.0/8",
                                      "deny dst 6.0.0.0/8", "permit all"}));
  lib.emplace("A3p", net::Acl::parse({"deny dst 7.0.0.0/8", "permit all"}));
  lib.emplace("permit_all", net::Acl::permit_all());
  return lib;
}

constexpr const char* kProgram = R"(
scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify A:1-in to A1p, A:3-out to A3p, C:1-in to permit_all, D:2-in to permit_all
check
fix
)";

TEST(LaiSema, ResolvesRunningExample) {
  const auto f = gen::make_figure1();
  const auto task = resolve(parse(kProgram), f.topo, running_example_library());

  EXPECT_EQ(task.scope.size(), 4u);
  // allow A:*, B:* => both directions of A1-A4, B1, B2 = 12 slots.
  EXPECT_EQ(task.allowed.size(), 12u);
  EXPECT_TRUE(task.is_allowed({f.A1, topo::Dir::In}));
  EXPECT_TRUE(task.is_allowed({f.B2, topo::Dir::Out}));
  EXPECT_FALSE(task.is_allowed({f.C1, topo::Dir::In}));

  ASSERT_EQ(task.modify.size(), 4u);
  const auto& a1 = task.modify.at({f.A1, topo::Dir::In});
  EXPECT_EQ(a1.size(), 4u);
  const auto& a3 = task.modify.at({f.A3, topo::Dir::Out});
  EXPECT_EQ(a3.size(), 2u);
  EXPECT_EQ(task.commands, (std::vector<Command>{Command::Check, Command::Fix}));
}

TEST(LaiSema, DirSuffixNarrowsAllowedSlots) {
  const auto f = gen::make_figure1();
  const auto task = resolve(parse("scope A:*\nallow A:*-in\ncheck"), f.topo);
  EXPECT_EQ(task.allowed.size(), 4u);
  EXPECT_TRUE(task.is_allowed({f.A1, topo::Dir::In}));
  EXPECT_FALSE(task.is_allowed({f.A1, topo::Dir::Out}));
}

TEST(LaiSema, ModifyDefaultsToIngress) {
  const auto f = gen::make_figure1();
  AclLibrary lib;
  lib.emplace("pa", net::Acl::permit_all());
  const auto task = resolve(parse("scope D:*\nmodify D:2 to pa\ncheck"), f.topo, lib);
  EXPECT_TRUE(task.modify.contains({f.D2, topo::Dir::In}));
}

TEST(LaiSema, ControlResolvesInterfacesAndHeader) {
  const auto f = gen::make_figure1();
  const auto task = resolve(parse(R"(
scope A:*, B:*, C:*, D:*
control A:1 -> D:3 isolate dst 2.0.0.0/8
generate
)"),
                            f.topo);
  ASSERT_EQ(task.controls.size(), 1u);
  const auto& c = task.controls[0];
  EXPECT_EQ(c.from, (std::vector<topo::InterfaceId>{f.A1}));
  EXPECT_EQ(c.to, (std::vector<topo::InterfaceId>{f.D3}));
  EXPECT_EQ(c.verb, ControlVerb::Isolate);
  EXPECT_TRUE(c.header.equals(gen::Figure1::traffic_class(2)));
}

TEST(LaiSema, HeaderSetKinds) {
  EXPECT_TRUE(header_set({HeaderSpec::Kind::All, {}}).equals(net::PacketSet::all()));
  const auto src = header_set({HeaderSpec::Kind::Src, net::parse_prefix("9.0.0.0/8")});
  net::Packet p;
  p.sip = net::parse_ipv4("9.1.1.1");
  EXPECT_TRUE(src.contains(p));
  p.sip = net::parse_ipv4("8.1.1.1");
  EXPECT_FALSE(src.contains(p));
}

TEST(LaiSema, UnknownNamesRejected) {
  const auto f = gen::make_figure1();
  EXPECT_THROW((void)resolve(parse("scope Z:*\ncheck"), f.topo), SemaError);
  EXPECT_THROW((void)resolve(parse("scope A:*\nallow A:9\ncheck"), f.topo), SemaError);
  EXPECT_THROW((void)resolve(parse("scope A:*\nmodify A:1 to ghost\ncheck"), f.topo), SemaError);
}

TEST(LaiSema, ModifyWildcardRejected) {
  const auto f = gen::make_figure1();
  AclLibrary lib;
  lib.emplace("pa", net::Acl::permit_all());
  EXPECT_THROW((void)resolve(parse("scope A:*\nmodify A:* to pa\ncheck"), f.topo, lib), SemaError);
}

TEST(LaiSema, DuplicateModifyRejected) {
  const auto f = gen::make_figure1();
  AclLibrary lib;
  lib.emplace("pa", net::Acl::permit_all());
  EXPECT_THROW((void)resolve(parse("scope A:*\nmodify A:1 to pa, A:1 to pa\ncheck"), f.topo, lib),
               SemaError);
}

TEST(LaiSema, OutOfScopeReferencesRejected) {
  const auto f = gen::make_figure1();
  AclLibrary lib;
  lib.emplace("pa", net::Acl::permit_all());
  EXPECT_THROW((void)resolve(parse("scope A:*\nallow D:*\ncheck"), f.topo), SemaError);
  EXPECT_THROW((void)resolve(parse("scope A:*\nmodify D:2 to pa\ncheck"), f.topo, lib), SemaError);
}

}  // namespace
}  // namespace jinjing::lai
