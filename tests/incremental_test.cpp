#include "core/incremental.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/checker.h"
#include "gen/fixtures.h"
#include "gen/scenario.h"
#include "gen/wan.h"
#include "smt/context.h"

namespace jinjing::core {
namespace {

using gen::Figure1;

/// A semantically no-op rebind of a slot: the bound ACL with its first rule
/// duplicated. First-match semantics make it equivalent, but the rule lists
/// differ, so it is a real (non-empty) update with an empty differential.
net::Acl duplicate_first_rule(const topo::Topology& topo, topo::AclSlot slot) {
  const net::Acl& acl = topo.acl(slot);
  std::vector<net::AclRule> rules{acl.rules().begin(), acl.rules().end()};
  EXPECT_FALSE(rules.empty());
  rules.insert(rules.begin(), rules.front());
  return net::Acl{std::move(rules), acl.default_action()};
}

std::shared_ptr<const PlanBundle> figure1_bundle(const Figure1& f) {
  smt::SmtContext smt;
  Checker checker{smt, f.topo, f.scope, {}};
  return checker.share_plan(f.traffic);
}

TEST(IncrementalPlanner, AcquireMissesThenHitsAfterInstall) {
  const auto f = gen::make_figure1();
  IncrementalPlanner planner;
  const topo::AclUpdate update = f.running_example_update();

  EXPECT_FALSE(planner.acquire(1, f.scope, f.traffic, update).valid());
  EXPECT_EQ(planner.stats().misses, 1u);

  const auto bundle = figure1_bundle(f);
  planner.install(1, f.scope, bundle);
  const IncrementalLease lease = planner.acquire(1, f.scope, f.traffic, update);
  ASSERT_TRUE(lease.valid());
  EXPECT_EQ(lease.bundle.get(), bundle.get());  // shared, not copied
  EXPECT_EQ(lease.version, 1u);
  EXPECT_TRUE(lease.clean.empty());  // no verdicts committed yet
  EXPECT_EQ(planner.stats().hits, 1u);
  EXPECT_EQ(planner.stats().cached_plans, 1u);
  EXPECT_EQ(planner.stats().cached_obligations, bundle->plan.size());

  // Re-installing for the same (version, scope, entering) is a no-op.
  planner.install(1, f.scope, figure1_bundle(f));
  EXPECT_EQ(planner.acquire(1, f.scope, f.traffic, update).bundle.get(), bundle.get());
}

TEST(IncrementalPlanner, CommitVerdictsAreReturnedForTheExactUpdateOnly) {
  const auto f = gen::make_figure1();
  IncrementalPlanner planner;
  const auto bundle = figure1_bundle(f);
  planner.install(1, f.scope, bundle);

  const topo::AclUpdate update = f.running_example_update();
  planner.commit(1, f.scope, f.traffic, update,
                 std::vector<bool>(bundle->plan.size(), true));

  const IncrementalLease same = planner.acquire(1, f.scope, f.traffic, update);
  ASSERT_TRUE(same.valid());
  ASSERT_EQ(same.clean.size(), bundle->plan.size());
  for (const bool bit : same.clean) EXPECT_TRUE(bit);

  // A different pending update must not inherit those verdicts.
  topo::AclUpdate other;
  other.emplace(topo::AclSlot{f.D2, topo::Dir::In}, net::Acl::permit_all());
  const IncrementalLease fresh = planner.acquire(1, f.scope, f.traffic, other);
  ASSERT_TRUE(fresh.valid());
  EXPECT_TRUE(fresh.clean.empty());
}

TEST(IncrementalPlanner, RecordApplyRebasesAndInvalidatesSelectively) {
  const auto f = gen::make_figure1();
  IncrementalPlanner planner;
  const auto bundle = figure1_bundle(f);
  ASSERT_EQ(bundle->plan.size(), 5u);  // FECs {1},{2,3},{4},{5,6},{7}
  planner.install(1, f.scope, bundle);

  const topo::AclUpdate pending = f.running_example_update();
  planner.commit(1, f.scope, f.traffic, pending,
                 std::vector<bool>(bundle->plan.size(), true));

  // Apply delta: C1-in additionally denies dst 5/8. Differential = that one
  // rule, so only the obligation whose class meets dst 5/8 AND whose paths
  // traverse C1 — the {5,6} class — loses its verdict.
  topo::AclUpdate delta;
  delta.emplace(topo::AclSlot{f.C1, topo::Dir::In},
                net::Acl::parse({"deny dst 7.0.0.0/8", "deny dst 5.0.0.0/8", "permit all"}));
  planner.record_apply(1, 2, f.topo, delta);

  EXPECT_EQ(planner.stats().rebases, 1u);
  EXPECT_EQ(planner.stats().invalidations, 1u);
  EXPECT_EQ(planner.stats().fallbacks, 0u);

  const IncrementalLease rebased = planner.acquire(2, f.scope, f.traffic, pending);
  ASSERT_TRUE(rebased.valid());
  EXPECT_EQ(rebased.bundle.get(), bundle.get());
  ASSERT_EQ(rebased.clean.size(), bundle->plan.size());
  for (const Obligation& o : bundle->plan.obligations()) {
    const bool meets_diff = o.fec->intersects(Figure1::traffic_class(5));
    EXPECT_EQ(rebased.clean[o.index], !meets_diff) << "obligation " << o.index;
  }

  // The base-version entry is retained for jobs still pinned to it.
  const IncrementalLease base = planner.acquire(1, f.scope, f.traffic, pending);
  ASSERT_TRUE(base.valid());
  for (const bool bit : base.clean) EXPECT_TRUE(bit);
}

TEST(IncrementalPlanner, EmptyDifferentialInvalidatesNothing) {
  const auto f = gen::make_figure1();
  IncrementalPlanner planner;
  const auto bundle = figure1_bundle(f);
  planner.install(1, f.scope, bundle);
  const topo::AclUpdate pending = f.running_example_update();
  planner.commit(1, f.scope, f.traffic, pending,
                 std::vector<bool>(bundle->plan.size(), true));

  // Rebind A1-in to its identical ACL: Definition 4.1 yields no
  // differential rules, so every verdict survives even though every
  // obligation's paths traverse A1.
  topo::AclUpdate delta;
  const topo::AclSlot a1{f.A1, topo::Dir::In};
  delta.emplace(a1, f.topo.acl(a1));
  planner.record_apply(1, 2, f.topo, delta);

  EXPECT_EQ(planner.stats().invalidations, 0u);
  const IncrementalLease lease = planner.acquire(2, f.scope, f.traffic, pending);
  ASSERT_TRUE(lease.valid());
  ASSERT_EQ(lease.clean.size(), bundle->plan.size());
  for (const bool bit : lease.clean) EXPECT_TRUE(bit);
}

TEST(IncrementalPlanner, ChainBudgetDropsEntriesAtTheLimit) {
  const auto f = gen::make_figure1();
  IncrementalPlanner planner{{.max_delta_chain = 2}};
  planner.install(1, f.scope, figure1_bundle(f));

  topo::AclUpdate delta;
  const topo::AclSlot a1{f.A1, topo::Dir::In};
  delta.emplace(a1, duplicate_first_rule(f.topo, a1));

  planner.record_apply(1, 2, f.topo, delta);  // chain 1
  planner.record_apply(2, 3, f.topo, delta);  // chain 2 — at the budget
  EXPECT_TRUE(planner.acquire(3, f.scope, f.traffic, {}).valid());
  planner.record_apply(3, 4, f.topo, delta);  // over budget: dropped
  EXPECT_FALSE(planner.acquire(4, f.scope, f.traffic, {}).valid());
  EXPECT_GE(planner.stats().fallbacks, 1u);
}

TEST(IncrementalPlanner, RetireVersionDropsItsEntries) {
  const auto f = gen::make_figure1();
  IncrementalPlanner planner;
  planner.install(1, f.scope, figure1_bundle(f));
  ASSERT_TRUE(planner.acquire(1, f.scope, f.traffic, {}).valid());
  planner.retire_version(1);
  EXPECT_FALSE(planner.acquire(1, f.scope, f.traffic, {}).valid());
  EXPECT_EQ(planner.stats().cached_plans, 0u);
}

TEST(IncrementalPlanner, DisabledPlannerNeverCaches) {
  const auto f = gen::make_figure1();
  IncrementalPlanner planner{{.max_delta_chain = 0}};
  planner.install(1, f.scope, figure1_bundle(f));
  EXPECT_FALSE(planner.acquire(1, f.scope, f.traffic, {}).valid());
  EXPECT_EQ(planner.stats().cached_plans, 0u);
}

TEST(IncrementalCheck, SkipsUntouchedAndReusesCommittedVerdicts) {
  const auto f = gen::make_figure1();
  IncrementalPlanner planner;
  planner.install(1, f.scope, figure1_bundle(f));

  // A consistent update touching every obligation (all paths enter at A1).
  topo::AclUpdate update;
  const topo::AclSlot a1{f.A1, topo::Dir::In};
  update.emplace(a1, duplicate_first_rule(f.topo, a1));

  IncrementalLease lease = planner.acquire(1, f.scope, f.traffic, update);
  ASSERT_TRUE(lease.valid());
  CheckOptions options;
  options.adopted_plan = lease.bundle;
  {
    smt::SmtContext smt;
    Checker checker{smt, f.topo, f.scope, options};
    const IncrementalOutcome out = run_incremental_check(checker, lease, update);
    EXPECT_TRUE(out.result.consistent);
    EXPECT_EQ(out.result.obligations_executed, 5u);
    EXPECT_EQ(out.reused, 0u);
    EXPECT_EQ(out.skipped, 0u);
    planner.commit(1, f.scope, f.traffic, update, out.clean);
  }
  // Second check of the same pending update: everything is proven already.
  lease = planner.acquire(1, f.scope, f.traffic, update);
  ASSERT_TRUE(lease.valid());
  {
    smt::SmtContext smt;
    Checker checker{smt, f.topo, f.scope, options};
    const IncrementalOutcome out = run_incremental_check(checker, lease, update);
    EXPECT_TRUE(out.result.consistent);
    EXPECT_EQ(out.result.obligations_executed, 0u);
    EXPECT_EQ(out.reused, 5u);
  }

  // An update touching only D2-in leaves the obligations whose paths avoid
  // D2 ({1}, {5,6}, {7}) trivially consistent.
  topo::AclUpdate d2_update;
  const topo::AclSlot d2{f.D2, topo::Dir::In};
  d2_update.emplace(d2, duplicate_first_rule(f.topo, d2));
  const IncrementalLease d2_lease = planner.acquire(1, f.scope, f.traffic, d2_update);
  ASSERT_TRUE(d2_lease.valid());
  smt::SmtContext smt;
  Checker checker{smt, f.topo, f.scope, options};
  const IncrementalOutcome out = run_incremental_check(checker, d2_lease, d2_update);
  EXPECT_TRUE(out.result.consistent);
  EXPECT_EQ(out.skipped, 3u);
  EXPECT_EQ(out.result.obligations_executed, 2u);
}

TEST(IncrementalCheck, FindsTheSameViolationsAsAFullCheck) {
  const auto f = gen::make_figure1();
  IncrementalPlanner planner;
  planner.install(1, f.scope, figure1_bundle(f));
  const topo::AclUpdate update = f.running_example_update();

  const IncrementalLease lease = planner.acquire(1, f.scope, f.traffic, update);
  ASSERT_TRUE(lease.valid());
  CheckOptions options;
  options.adopted_plan = lease.bundle;
  smt::SmtContext smt;
  Checker incremental{smt, f.topo, f.scope, options};
  const IncrementalOutcome out = run_incremental_check(incremental, lease, update);

  smt::SmtContext fresh_smt;
  Checker fresh{fresh_smt, f.topo, f.scope, {}};
  const CheckResult full = fresh.check(update, f.traffic);

  EXPECT_EQ(out.result.consistent, full.consistent);
  EXPECT_FALSE(out.result.consistent);
  ASSERT_FALSE(out.result.violations.empty());
  EXPECT_TRUE(Figure1::traffic_class(1).contains(out.result.violations.front().witness) ||
              Figure1::traffic_class(2).contains(out.result.violations.front().witness));
}

/// End-to-end oracle: interleave pending checks and applied deltas across a
/// chain of versions on the synthetic WAN, answering every check both
/// incrementally (shared bundle, delta-scoped execution, committed
/// verdicts) and with a from-scratch checker. Verdicts must always agree.
TEST(IncrementalCheck, AgreesWithFreshCheckerAcrossVersions) {
  const gen::Wan wan = gen::make_wan(gen::small_wan());
  IncrementalPlanner planner;
  std::vector<std::shared_ptr<const topo::Topology>> versions;
  versions.push_back(std::make_shared<const topo::Topology>(wan.topo));
  std::uint64_t version = 1;
  const CheckOptions base_options;

  for (unsigned round = 1; round <= 4; ++round) {
    const topo::AclUpdate pending = gen::perturb_rules(wan, 0.05, 40 + round);
    const topo::Topology& current = *versions.back();

    bool incremental_consistent = false;
    smt::SmtContext smt;
    const IncrementalLease lease = planner.acquire(version, wan.scope, wan.traffic, pending);
    if (lease.valid()) {
      CheckOptions adopted = base_options;
      adopted.adopted_plan = lease.bundle;
      Checker checker{smt, current, wan.scope, adopted};
      const IncrementalOutcome out = run_incremental_check(checker, lease, pending);
      incremental_consistent = out.result.consistent;
      planner.commit(version, wan.scope, wan.traffic, pending, out.clean);
    } else {
      Checker checker{smt, current, wan.scope, base_options};
      const CheckResult result = checker.check(pending, wan.traffic);
      incremental_consistent = result.consistent;
      planner.install(version, wan.scope, checker.share_plan(wan.traffic));
      if (result.consistent) {
        planner.commit(version, wan.scope, wan.traffic, pending,
                       std::vector<bool>(result.obligation_count, true));
      }
    }

    smt::SmtContext oracle_smt;
    Checker oracle{oracle_smt, current, wan.scope, base_options};
    EXPECT_EQ(incremental_consistent, oracle.check(pending, wan.traffic).consistent)
        << "round " << round << " at version " << version;

    // Advance the version chain with an applied perturbation.
    const topo::AclUpdate delta = gen::perturb_rules(wan, 0.03, 900 + round);
    topo::Topology next = current;
    for (const auto& [slot, acl] : delta) next.bind_acl(slot, acl);
    planner.record_apply(version, version + 1, current, delta);
    versions.push_back(std::make_shared<const topo::Topology>(std::move(next)));
    ++version;
  }

  const IncrementalStats stats = planner.stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.rebases, 3u);
}

}  // namespace
}  // namespace jinjing::core
