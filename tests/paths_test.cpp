#include "topo/paths.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/fixtures.h"

namespace jinjing::topo {
namespace {

using gen::Figure1;

std::vector<std::string> path_strings(const Topology& topo, const std::vector<Path>& paths) {
  std::vector<std::string> out;
  out.reserve(paths.size());
  for (const auto& p : paths) out.push_back(to_string(topo, p));
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Paths, Figure1EnumeratesExactlyThePaperPaths) {
  const auto f = gen::make_figure1();
  const auto paths = enumerate_paths(f.topo, f.scope);
  const auto strings = path_strings(f.topo, paths);
  const std::vector<std::string> expected = {
      "<A:1, A:2, B:1, B:2, C:2, C:4, D:2, D:3>",  // p2
      "<A:1, A:3, C:1, C:3>",                      // to C3
      "<A:1, A:3, C:1, C:4, D:2, D:3>",            // p1
      "<A:1, A:4, D:1, D:3>",                      // p0
  };
  EXPECT_EQ(strings, expected);
}

TEST(Paths, HopRolesAlternateInOut) {
  const auto f = gen::make_figure1();
  const auto paths = enumerate_paths(f.topo, f.scope);
  for (const auto& p : paths) {
    for (std::size_t i = 0; i < p.hops().size(); ++i) {
      EXPECT_EQ(p.hops()[i].dir, i % 2 == 0 ? Dir::In : Dir::Out)
          << to_string(f.topo, p) << " hop " << i;
    }
  }
}

TEST(Paths, ForwardingSetMatchesEdgePredicates) {
  const auto f = gen::make_figure1();
  const auto paths = enumerate_paths(f.topo, f.scope);
  // p0 carries traffic 1-6; p1 carries only 4; p2 carries 2-3.
  for (const auto& p : paths) {
    const auto fwd = forwarding_set(f.topo, p);
    const auto name = to_string(f.topo, p);
    if (name == "<A:1, A:4, D:1, D:3>") {
      EXPECT_TRUE(fwd.equals(Figure1::traffic_class(1) | Figure1::traffic_class(2) |
                             Figure1::traffic_class(3) | Figure1::traffic_class(4) |
                             Figure1::traffic_class(5) | Figure1::traffic_class(6)));
    } else if (name == "<A:1, A:3, C:1, C:4, D:2, D:3>") {
      EXPECT_TRUE(fwd.equals(Figure1::traffic_class(4)));
    } else if (name == "<A:1, A:2, B:1, B:2, C:2, C:4, D:2, D:3>") {
      EXPECT_TRUE(fwd.equals(Figure1::traffic_class(2) | Figure1::traffic_class(3)));
    } else if (name == "<A:1, A:3, C:1, C:3>") {
      EXPECT_TRUE(fwd.equals(Figure1::traffic_class(5) | Figure1::traffic_class(6) |
                             Figure1::traffic_class(7)));
    } else {
      FAIL() << "unexpected path " << name;
    }
  }
}

TEST(Paths, PathPermitsAppliesAllHopAcls) {
  const auto f = gen::make_figure1();
  const auto paths = enumerate_paths(f.topo, f.scope);
  const auto p1_it = std::find_if(paths.begin(), paths.end(), [&](const Path& p) {
    return to_string(f.topo, p) == "<A:1, A:3, C:1, C:4, D:2, D:3>";
  });
  ASSERT_NE(p1_it, paths.end());
  // On p1: A1 denies 6, C1 denies 7, D2 denies 1 and 2.
  EXPECT_FALSE(path_permits(f.topo, *p1_it, Figure1::traffic_packet(1)));
  EXPECT_FALSE(path_permits(f.topo, *p1_it, Figure1::traffic_packet(2)));
  EXPECT_TRUE(path_permits(f.topo, *p1_it, Figure1::traffic_packet(4)));
  EXPECT_FALSE(path_permits(f.topo, *p1_it, Figure1::traffic_packet(6)));
  EXPECT_FALSE(path_permits(f.topo, *p1_it, Figure1::traffic_packet(7)));
}

TEST(Paths, PathPermittedSetAgreesWithPointwiseEvaluation) {
  const auto f = gen::make_figure1();
  const ConfigView view{f.topo};
  for (const auto& p : enumerate_paths(f.topo, f.scope)) {
    const auto permitted = path_permitted_set(view, p);
    for (int k = 1; k <= 7; ++k) {
      EXPECT_EQ(permitted.contains(Figure1::traffic_packet(k)),
                path_permits(f.topo, p, Figure1::traffic_packet(k)))
          << to_string(f.topo, p) << " traffic " << k;
    }
  }
}

TEST(Paths, UpdatedViewChangesPathDecision) {
  const auto f = gen::make_figure1();
  const auto update = f.running_example_update();
  const ConfigView updated{f.topo, &update};
  const auto paths = enumerate_paths(f.topo, f.scope);
  const auto p0_it = std::find_if(paths.begin(), paths.end(), [&](const Path& p) {
    return to_string(f.topo, p) == "<A:1, A:4, D:1, D:3>";
  });
  ASSERT_NE(p0_it, paths.end());
  // Originally traffic 2 is permitted on p0; after moving the deny to A1 it
  // is dropped — the paper's motivating inconsistency.
  EXPECT_TRUE(path_permits(f.topo, *p0_it, Figure1::traffic_packet(2)));
  EXPECT_FALSE(path_permits(updated, *p0_it, Figure1::traffic_packet(2)));
}

TEST(Paths, VisitsInterfaceAndSlot) {
  const auto f = gen::make_figure1();
  const auto paths = enumerate_paths(f.topo, f.scope);
  const auto& p0 = *std::find_if(paths.begin(), paths.end(), [&](const Path& p) {
    return to_string(f.topo, p) == "<A:1, A:4, D:1, D:3>";
  });
  EXPECT_TRUE(p0.visits(f.A1));
  EXPECT_FALSE(p0.visits(f.C1));
  EXPECT_TRUE(p0.visits(AclSlot{f.A1, Dir::In}));
  EXPECT_FALSE(p0.visits(AclSlot{f.A1, Dir::Out}));
}

TEST(Paths, MaxPathsGuardThrows) {
  const auto f = gen::make_figure1();
  PathEnumOptions options;
  options.max_paths = 2;
  EXPECT_THROW((void)enumerate_paths(f.topo, f.scope, options), TopologyError);
}

TEST(Paths, PruneUnroutableDropsNothingInFigure1) {
  const auto f = gen::make_figure1();
  PathEnumOptions options;
  options.prune_unroutable = true;
  EXPECT_EQ(enumerate_paths(f.topo, f.scope, options).size(), 4u);
}

}  // namespace
}  // namespace jinjing::topo
