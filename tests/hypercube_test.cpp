#include "net/hypercube.h"

#include <gtest/gtest.h>

namespace jinjing::net {
namespace {

TEST(HyperCube, DefaultIsFullSpace) {
  const HyperCube c;
  EXPECT_EQ(c.interval(Field::SrcIp), Interval::full(32));
  EXPECT_EQ(c.interval(Field::Proto), Interval::full(8));
  // 2^(32+32+16+16+8) = 2^104.
  EXPECT_EQ(c.volume(), Volume{1} << 104);
}

TEST(HyperCube, PointContainsExactlyThatPacket) {
  Packet p;
  p.sip = Ipv4{10, 0, 0, 1};
  p.dip = Ipv4{1, 2, 3, 4};
  p.sport = 1234;
  p.dport = 80;
  p.proto = 6;
  const auto c = HyperCube::point(p);
  EXPECT_TRUE(c.contains(p));
  EXPECT_EQ(c.volume(), Volume{1});
  Packet q = p;
  q.dport = 81;
  EXPECT_FALSE(c.contains(q));
  EXPECT_EQ(c.min_packet(), p);
}

TEST(HyperCube, IntersectPerField) {
  HyperCube a;
  a.set_interval(Field::DstIp, Interval(100, 200));
  HyperCube b;
  b.set_interval(Field::DstIp, Interval(150, 300));
  b.set_interval(Field::DstPort, Interval(80, 80));
  const auto c = intersect(a, b);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->interval(Field::DstIp), Interval(150, 200));
  EXPECT_EQ(c->interval(Field::DstPort), Interval(80, 80));
}

TEST(HyperCube, IntersectDisjoint) {
  HyperCube a;
  a.set_interval(Field::Proto, Interval(6, 6));
  HyperCube b;
  b.set_interval(Field::Proto, Interval(17, 17));
  EXPECT_FALSE(intersect(a, b).has_value());
  EXPECT_FALSE(a.overlaps(b));
}

TEST(HyperCube, SubtractDisjointReturnsOriginal) {
  HyperCube a;
  a.set_interval(Field::DstIp, Interval(0, 10));
  HyperCube b;
  b.set_interval(Field::DstIp, Interval(20, 30));
  const auto pieces = subtract(a, b);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], a);
}

TEST(HyperCube, SubtractSelfIsEmpty) {
  HyperCube a;
  a.set_interval(Field::SrcPort, Interval(10, 20));
  EXPECT_TRUE(subtract(a, a).empty());
}

TEST(HyperCube, SubtractPreservesVolume) {
  HyperCube a;
  a.set_interval(Field::DstIp, Interval(0, 99));
  a.set_interval(Field::DstPort, Interval(0, 9));
  HyperCube b;
  b.set_interval(Field::DstIp, Interval(50, 149));
  b.set_interval(Field::DstPort, Interval(5, 14));
  const auto pieces = subtract(a, b);
  Volume pieces_volume = 0;
  for (const auto& piece : pieces) {
    pieces_volume += piece.volume();
    EXPECT_TRUE(a.contains(piece));
    EXPECT_FALSE(piece.overlaps(b));
  }
  const auto inter = intersect(a, b);
  ASSERT_TRUE(inter.has_value());
  EXPECT_EQ(pieces_volume + inter->volume(), a.volume());

  // Pieces must be pairwise disjoint.
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    for (std::size_t j = i + 1; j < pieces.size(); ++j) {
      EXPECT_FALSE(pieces[i].overlaps(pieces[j]));
    }
  }
}

TEST(HyperCube, ContainmentIsPartialOrder) {
  HyperCube big;
  big.set_interval(Field::DstIp, Interval(0, 100));
  HyperCube small;
  small.set_interval(Field::DstIp, Interval(10, 20));
  small.set_interval(Field::Proto, Interval(6, 6));
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.contains(big));
}

}  // namespace
}  // namespace jinjing::net
