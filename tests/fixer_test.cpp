#include "core/fixer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/fixtures.h"

namespace jinjing::core {
namespace {

using gen::Figure1;

std::vector<topo::AclSlot> allow_a_and_b(const gen::Figure1& f) {
  std::vector<topo::AclSlot> allowed;
  for (const auto iface : {f.A1, f.A2, f.A3, f.A4, f.B1, f.B2}) {
    allowed.push_back({iface, topo::Dir::In});
    allowed.push_back({iface, topo::Dir::Out});
  }
  return allowed;
}

TEST(Fixer, RunningExampleNeighborhoodsAreTraffic1And2) {
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  Fixer fixer{smt, f.topo, f.scope};
  const auto result = fixer.fix(f.running_example_update(), f.traffic, allow_a_and_b(f));

  ASSERT_EQ(result.neighborhoods.size(), 2u);
  std::vector<net::PacketSet> sets;
  for (const auto& n : result.neighborhoods) sets.push_back(n.set);
  EXPECT_TRUE(std::any_of(sets.begin(), sets.end(), [](const net::PacketSet& s) {
    return s.equals(Figure1::traffic_class(1));
  }));
  EXPECT_TRUE(std::any_of(sets.begin(), sets.end(), [](const net::PacketSet& s) {
    return s.equals(Figure1::traffic_class(2));
  }));
}

TEST(Fixer, RunningExampleProducesThePaperPlan) {
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  FixOptions options;
  options.simplify_result = false;  // inspect the raw prepended rules
  Fixer fixer{smt, f.topo, f.scope, options};
  const auto result = fixer.fix(f.running_example_update(), f.traffic, allow_a_and_b(f));

  ASSERT_TRUE(result.success);
  // The paper's plan: permit 1/8 and 2/8 at A1 (p0 must stay open) and deny
  // 2/8 at A2 (p2 must stay closed for traffic 2).
  const auto find_action = [&](topo::InterfaceId iface) {
    return std::find_if(result.actions.begin(), result.actions.end(),
                        [iface](const FixAction& a) { return a.slot.iface == iface; });
  };
  const auto a1 = find_action(f.A1);
  ASSERT_NE(a1, result.actions.end());
  EXPECT_EQ(a1->slot.dir, topo::Dir::In);
  ASSERT_EQ(a1->rules.size(), 2u);
  for (const auto& rule : a1->rules) {
    EXPECT_EQ(rule.action, net::Action::Permit);
    EXPECT_TRUE(rule.match.dst == net::parse_prefix("1.0.0.0/8") ||
                rule.match.dst == net::parse_prefix("2.0.0.0/8"));
  }

  // Traffic 2 on p2 must stay denied; with A and B allowed, one of the p2
  // hops before C gets the deny (the paper's solver picked A2).
  const auto deny_action =
      std::find_if(result.actions.begin(), result.actions.end(), [&](const FixAction& a) {
        return a.slot.iface != f.A1 &&
               std::any_of(a.rules.begin(), a.rules.end(), [](const net::AclRule& r) {
                 return r.action == net::Action::Deny &&
                        r.match.dst == net::parse_prefix("2.0.0.0/8");
               });
      });
  ASSERT_NE(deny_action, result.actions.end());
  EXPECT_TRUE(deny_action->slot.iface == f.A2 || deny_action->slot.iface == f.B1 ||
              deny_action->slot.iface == f.B2);
}

TEST(Fixer, FixedUpdatePassesCheck) {
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  Fixer fixer{smt, f.topo, f.scope};
  const auto result = fixer.fix(f.running_example_update(), f.traffic, allow_a_and_b(f));
  ASSERT_TRUE(result.success);

  smt::SmtContext smt2;
  Checker checker{smt2, f.topo, f.scope};
  const auto check = checker.check(result.fixed_update, f.traffic);
  EXPECT_TRUE(check.consistent) << "fix output must re-check clean";
}

TEST(Fixer, SimplifiedFixedA1MatchesPaper) {
  // With simplification on, A1 collapses to "deny 6/8" + default permit
  // modulo the fixing permits that remain load-bearing... in the paper the
  // final simplified A1 keeps only "deny dst 6.0.0.0/8, permit all".
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  Fixer fixer{smt, f.topo, f.scope};
  const auto result = fixer.fix(f.running_example_update(), f.traffic, allow_a_and_b(f));
  ASSERT_TRUE(result.success);
  const auto& a1 = result.fixed_update.at({f.A1, topo::Dir::In});
  // Exact decision-model check instead of rule-list text: equivalent to
  // the paper's two-rule ACL.
  EXPECT_TRUE(net::equivalent(
      a1, net::Acl::parse({"deny dst 6.0.0.0/8", "permit all"})));
}

TEST(Fixer, ConsistentUpdateNeedsNoFix) {
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  Fixer fixer{smt, f.topo, f.scope};
  const auto result = fixer.fix({}, f.traffic, allow_a_and_b(f));
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.neighborhoods.empty());
  EXPECT_TRUE(result.actions.empty());
}

TEST(Fixer, ReportsFailureWhenAllowTooNarrow) {
  // Allow nothing: the running-example violations cannot be repaired.
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  Fixer fixer{smt, f.topo, f.scope};
  const auto result = fixer.fix(f.running_example_update(), f.traffic, {});
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(std::any_of(result.neighborhoods.begin(), result.neighborhoods.end(),
                          [](const NeighborhoodReport& n) { return !n.solved; }));
}

TEST(Fixer, PlacementConstraintKeepsForbiddenDevicesClean) {
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  Fixer fixer{smt, f.topo, f.scope};
  const auto result = fixer.fix(f.running_example_update(), f.traffic, allow_a_and_b(f));
  for (const auto& action : result.actions) {
    const auto device = f.topo.device_of(action.slot.iface);
    EXPECT_TRUE(device == f.A || device == f.B)
        << "fix touched forbidden device " << f.topo.device_name(device);
  }
}

TEST(Fixer, FixWithControlIntent) {
  // Intent: open traffic 6 from A1 to C3 (currently denied by A1). Fix must
  // repair the no-op update so 6 reaches C3 but stays denied towards D3.
  const auto f = gen::make_figure1();
  lai::ControlIntent open6;
  open6.from = {f.A1};
  open6.to = {f.C3};
  open6.verb = lai::ControlVerb::Open;
  open6.header = Figure1::traffic_class(6);

  smt::SmtContext smt;
  Fixer fixer{smt, f.topo, f.scope};
  const auto result = fixer.fix({}, f.traffic, allow_a_and_b(f), {open6});
  ASSERT_TRUE(result.success);
  ASSERT_FALSE(result.actions.empty());

  smt::SmtContext smt2;
  Checker checker{smt2, f.topo, f.scope};
  EXPECT_TRUE(checker.check(result.fixed_update, f.traffic, {open6}).consistent);
}

}  // namespace
}  // namespace jinjing::core
