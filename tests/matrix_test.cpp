// Randomized cross-backend matrix: the checker and fixer must produce the
// same verdicts — validated against the exact header-space oracle — across
// every combination of set backend, thread count and SMT incrementality,
// and the observability counters must be consistent with the options that
// produced them. Registered with the "slow" ctest label.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "core/checker.h"
#include "core/fixer.h"
#include "gen/scenario.h"
#include "obs/stats.h"
#include "topo/paths.h"

namespace jinjing {
namespace {

struct MatrixConfig {
  topo::SetBackend backend;
  unsigned threads;
  bool incremental;
};

std::string to_string(const MatrixConfig& config) {
  return std::string(topo::to_string(config.backend)) + "/t" +
         std::to_string(config.threads) +
         (config.incremental ? "/incremental" : "/fresh-solver");
}

constexpr std::array<MatrixConfig, 12> kMatrix = {{
    {topo::SetBackend::Hypercube, 1, true},
    {topo::SetBackend::Hypercube, 2, true},
    {topo::SetBackend::Hypercube, 8, true},
    {topo::SetBackend::Hypercube, 1, false},
    {topo::SetBackend::Hypercube, 2, false},
    {topo::SetBackend::Hypercube, 8, false},
    {topo::SetBackend::Bdd, 1, true},
    {topo::SetBackend::Bdd, 2, true},
    {topo::SetBackend::Bdd, 8, true},
    {topo::SetBackend::Bdd, 1, false},
    {topo::SetBackend::Bdd, 2, false},
    {topo::SetBackend::Bdd, 8, false},
}};

gen::WanParams matrix_wan(unsigned seed) {
  gen::WanParams p;
  p.cores = 2;
  p.aggs = 2;
  p.cells = 2;
  p.gateways_per_cell = 2;
  p.prefixes_per_gateway = 2;
  p.rules_per_acl = 10;
  p.seed = seed;
  return p;
}

/// Exact per-path consistency verdict via the header-space engine.
bool oracle_consistent(const gen::Wan& wan, const topo::AclUpdate& update) {
  const topo::ConfigView before{wan.topo};
  const topo::ConfigView after{wan.topo, &update};
  for (const auto& path : topo::enumerate_paths(wan.topo, wan.scope)) {
    const auto carried = topo::forwarding_set(wan.topo, path) & wan.traffic;
    if (carried.is_empty()) continue;
    if (!(topo::path_permitted_set(before, path) & carried)
             .equals(topo::path_permitted_set(after, path) & carried)) {
      return false;
    }
  }
  return true;
}

core::CheckOptions check_options(const MatrixConfig& config) {
  core::CheckOptions options;
  options.stop_at_first = false;
  options.threads = config.threads;
  options.set_backend = config.backend;
  options.incremental_smt = config.incremental;
  return options;
}

// Every cell of the matrix agrees with the oracle, finds the same number of
// violations (with genuine witnesses), and records counters consistent with
// the options that produced them.
class FullMatrixSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(FullMatrixSweep, VerdictsAgreeAndCountersMatchOptions) {
  const auto wan = gen::make_wan(matrix_wan(1000 + GetParam()));
  const auto update = gen::perturb_rules(wan, 0.05, GetParam());
  const bool expected = oracle_consistent(wan, update);
  const topo::ConfigView before{wan.topo};
  const topo::ConfigView after{wan.topo, &update};

  std::optional<std::size_t> violation_count;
  for (const auto& config : kMatrix) {
    SCOPED_TRACE(to_string(config));
    obs::StatsRegistry registry;
    core::CheckResult result;
    {
      const obs::ScopedRegistry installed{registry};
      smt::SmtContext smt;
      core::Checker checker{smt, wan.topo, wan.scope, check_options(config)};
      result = checker.check(update, wan.traffic);

      // Witnesses must be genuine in every configuration.
      for (const auto& v : result.violations) {
        const auto& path = checker.paths()[v.path_index];
        EXPECT_EQ(topo::path_permits(before, path, v.witness), v.decision_before);
        EXPECT_EQ(topo::path_permits(after, path, v.witness), v.decision_after);
        EXPECT_NE(v.decision_before, v.decision_after);
      }
    }

    EXPECT_EQ(result.consistent, expected);
    // With stop_at_first off, every cell enumerates the same violating FECs.
    if (!violation_count) violation_count = result.violations.size();
    EXPECT_EQ(result.violations.size(), *violation_count);

    // Counter/option consistency, on a registry scoped to exactly this run.
    const auto total = [&](obs::Counter c) { return registry.total(c); };
    EXPECT_GT(total(obs::Counter::SmtQueries), 0u);
    if (config.incremental) {
      EXPECT_GT(total(obs::Counter::SmtQueriesCached), 0u);
      EXPECT_LE(total(obs::Counter::SmtQueriesCached),
                total(obs::Counter::SmtQueries));
    } else {
      EXPECT_EQ(total(obs::Counter::SmtQueriesCached), 0u);
    }
    if (config.backend == topo::SetBackend::Hypercube) {
      EXPECT_EQ(total(obs::Counter::BddMemoHits), 0u);
      EXPECT_EQ(total(obs::Counter::BddMemoMisses), 0u);
      EXPECT_EQ(registry.gauge(obs::Gauge::BddNodes), 0u);
    } else {
      EXPECT_GT(total(obs::Counter::BddMemoHits) +
                    total(obs::Counter::BddMemoMisses),
                0u);
      EXPECT_GT(registry.gauge(obs::Gauge::BddNodes), 0u);
    }
    if (config.threads == 1) {
      EXPECT_EQ(total(obs::Counter::ExecutorSteals), 0u);
    }
    EXPECT_EQ(total(obs::Counter::PlanBuilds), 1u);
    EXPECT_EQ(total(obs::Counter::PlanCacheHits), 0u);
    EXPECT_GE(total(obs::Counter::FecCacheMisses), 1u);
    EXPECT_GT(total(obs::Counter::ObligationsPlanned), 0u);
    EXPECT_EQ(total(obs::Counter::ObligationsExecuted),
              total(obs::Counter::ObligationsPlanned));
    EXPECT_EQ(total(obs::Counter::ObligationsCancelled), 0u);
    EXPECT_GE(total(obs::Counter::ExecutorRuns), 1u);
    EXPECT_EQ(total(obs::Counter::SmtTimeouts), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullMatrixSweep, ::testing::Range(1u, 6u));

// Witness determinism across thread counts. Two distinct guarantees:
//  - stop_at_first=false: the violating FECs (and hence verdict and
//    violation count) are identical across thread counts; the witness
//    *packets* are solver-model-dependent and only need to be genuine.
//  - stop_at_first=true, parallel: the executor reports the minimal
//    violating obligation and re-derives its witness on a fresh Z3 context,
//    so the reported violation is byte-identical for every thread count > 1
//    and for both solver modes.
class WitnessDeterminism : public ::testing::TestWithParam<unsigned> {};

TEST_P(WitnessDeterminism, FullSweepCountsAgreeAcrossThreadCounts) {
  const auto wan = gen::make_wan(matrix_wan(2000 + GetParam()));
  const auto update = gen::perturb_rules(wan, 0.06, GetParam());
  const topo::ConfigView before{wan.topo};
  const topo::ConfigView after{wan.topo, &update};

  for (const bool incremental : {false, true}) {
    std::optional<std::size_t> reference_count;
    for (const unsigned threads : {1u, 2u, 8u}) {
      SCOPED_TRACE((incremental ? "incremental/t" : "fresh-solver/t") +
                   std::to_string(threads));
      smt::SmtContext smt;
      core::CheckOptions options;
      options.stop_at_first = false;
      options.threads = threads;
      options.incremental_smt = incremental;
      core::Checker checker{smt, wan.topo, wan.scope, options};
      const auto result = checker.check(update, wan.traffic);

      if (!reference_count) reference_count = result.violations.size();
      EXPECT_EQ(result.violations.size(), *reference_count);
      for (const auto& v : result.violations) {
        const auto& path = checker.paths()[v.path_index];
        EXPECT_EQ(topo::path_permits(before, path, v.witness), v.decision_before);
        EXPECT_EQ(topo::path_permits(after, path, v.witness), v.decision_after);
      }
    }
  }
}

TEST_P(WitnessDeterminism, FirstWitnessIdenticalAcrossParallelRuns) {
  const auto wan = gen::make_wan(matrix_wan(2000 + GetParam()));
  const auto update = gen::perturb_rules(wan, 0.06, GetParam());
  // These seeds perturb enough rules to break consistency; the oracle
  // confirms it so the determinism assertions below are never vacuous.
  ASSERT_FALSE(oracle_consistent(wan, update));

  for (const bool incremental : {false, true}) {
    std::optional<core::Violation> reference;
    for (const unsigned threads : {2u, 4u, 8u}) {
      SCOPED_TRACE((incremental ? "incremental/t" : "fresh-solver/t") +
                   std::to_string(threads));
      smt::SmtContext smt;
      core::CheckOptions options;
      options.threads = threads;
      options.incremental_smt = incremental;
      core::Checker checker{smt, wan.topo, wan.scope, options};
      auto result = checker.check(update, wan.traffic);
      EXPECT_FALSE(result.consistent);
      ASSERT_EQ(result.violations.size(), 1u);

      if (!reference) {
        reference = std::move(result.violations[0]);
        continue;
      }
      EXPECT_EQ(result.violations[0].witness, reference->witness);
      EXPECT_EQ(result.violations[0].path_index, reference->path_index);
      EXPECT_EQ(result.violations[0].decision_before, reference->decision_before);
      EXPECT_EQ(result.violations[0].decision_after, reference->decision_after);
    }
  }

  // The sequential first-found violation lives in the same minimal
  // obligation: its verdict agrees and its witness is genuine.
  smt::SmtContext smt;
  core::Checker sequential{smt, wan.topo, wan.scope};
  const auto result = sequential.check(update, wan.traffic);
  EXPECT_FALSE(result.consistent);
  ASSERT_EQ(result.violations.size(), 1u);
  const auto& v = result.violations[0];
  const topo::ConfigView before{wan.topo};
  const topo::ConfigView after{wan.topo, &update};
  const auto& path = sequential.paths()[v.path_index];
  EXPECT_EQ(topo::path_permits(before, path, v.witness), v.decision_before);
  EXPECT_EQ(topo::path_permits(after, path, v.witness), v.decision_after);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WitnessDeterminism, ::testing::Range(1u, 4u));

// The fixer reaches the same outcome in every cell, and every successful
// repair is accepted by the exact oracle.
class FixerMatrix : public ::testing::TestWithParam<unsigned> {};

TEST_P(FixerMatrix, OutcomesAgreeAcrossMatrix) {
  const auto wan = gen::make_wan(matrix_wan(3000 + GetParam()));
  const auto update = gen::perturb_rules(wan, 0.06, GetParam());

  std::optional<bool> reference_success;
  for (const auto& config : kMatrix) {
    SCOPED_TRACE(to_string(config));
    smt::SmtContext smt;
    core::FixOptions options;
    options.check = check_options(config);
    core::Fixer fixer{smt, wan.topo, wan.scope, options};
    const auto fix = fixer.fix(update, wan.traffic, wan.topo.bound_slots());

    if (!reference_success) reference_success = fix.success;
    EXPECT_EQ(fix.success, *reference_success);
    if (fix.success) EXPECT_TRUE(oracle_consistent(wan, fix.fixed_update));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixerMatrix, ::testing::Range(1u, 3u));

}  // namespace
}  // namespace jinjing
