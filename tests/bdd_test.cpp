#include "net/bdd.h"

#include <gtest/gtest.h>

#include <random>

#include "net/acl_algebra.h"

namespace jinjing::net {
namespace {

TEST(Bdd, TerminalsAndVars) {
  BddManager bdd;
  EXPECT_TRUE(BddManager::is_empty(BddManager::kFalse));
  EXPECT_FALSE(BddManager::is_empty(BddManager::kTrue));
  EXPECT_EQ(bdd.land(BddManager::kTrue, BddManager::kTrue), BddManager::kTrue);
  EXPECT_EQ(bdd.land(BddManager::kTrue, BddManager::kFalse), BddManager::kFalse);
  EXPECT_EQ(bdd.lnot(BddManager::kFalse), BddManager::kTrue);

  const auto x = bdd.var(0);
  EXPECT_EQ(bdd.land(x, bdd.lnot(x)), BddManager::kFalse);
  EXPECT_EQ(bdd.lor(x, bdd.lnot(x)), BddManager::kTrue);
  EXPECT_EQ(bdd.land(x, x), x);  // hash-consing: idempotence is identity
}

TEST(Bdd, FromPacketIsSingleton) {
  BddManager bdd;
  const auto p = packet_to("1.2.3.4");
  const auto node = bdd.from_packet(p);
  EXPECT_TRUE(bdd.contains(node, p));
  EXPECT_EQ(bdd.volume(node), Volume{1});
  auto q = p;
  q.dip.value ^= 1;
  EXPECT_FALSE(bdd.contains(node, q));
  const auto back = bdd.sample(node);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, p);
}

TEST(Bdd, PrefixCubeMembershipAndVolume) {
  BddManager bdd;
  HyperCube cube;
  cube.set_interval(Field::DstIp, parse_prefix("10.20.0.0/16").interval());
  const auto node = bdd.from_cube(cube);
  EXPECT_TRUE(bdd.contains(node, packet_to("10.20.3.4")));
  EXPECT_FALSE(bdd.contains(node, packet_to("10.21.0.0")));
  EXPECT_EQ(bdd.volume(node), PacketSet{cube}.volume());
}

TEST(Bdd, NonAlignedIntervalExact) {
  BddManager bdd;
  HyperCube cube;
  cube.set_interval(Field::DstPort, Interval(100, 1000));  // not a power-of-two block
  const auto node = bdd.from_cube(cube);
  Packet p;
  for (const auto port : {99, 100, 500, 1000, 1001}) {
    p.dport = static_cast<std::uint16_t>(port);
    EXPECT_EQ(bdd.contains(node, p), port >= 100 && port <= 1000) << port;
  }
  EXPECT_EQ(bdd.volume(node), PacketSet{cube}.volume());
}

TEST(Bdd, FullSpaceVolume) {
  BddManager bdd;
  EXPECT_EQ(bdd.volume(bdd.from_set(PacketSet::all())), Volume{1} << 104);
  EXPECT_EQ(bdd.volume(BddManager::kFalse), Volume{0});
}

TEST(Bdd, SampleIsMember) {
  BddManager bdd;
  const auto set = permitted_set(Acl::parse({"deny dst 1.0.0.0/8", "permit all"}));
  const auto node = bdd.from_set(set);
  const auto p = bdd.sample(node);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(bdd.contains(node, *p));
  EXPECT_TRUE(set.contains(*p));
}

TEST(Bdd, ExistsQuantifiesOutBits) {
  BddManager bdd;
  const auto x0 = bdd.var(0);
  const auto x1 = bdd.var(1);
  // ∃x0. (x0 ∧ x1) = x1;  ∃x0,x1. (x0 ∧ x1) = true.
  EXPECT_EQ(bdd.exists(bdd.land(x0, x1), 0, 1), x1);
  EXPECT_EQ(bdd.exists(bdd.land(x0, x1), 0, 2), BddManager::kTrue);
  // Quantifying bits the node does not test is the identity.
  EXPECT_EQ(bdd.exists(x1, 0, 1), x1);
  EXPECT_EQ(bdd.exists(BddManager::kFalse, 0, 8), BddManager::kFalse);
}

TEST(Bdd, ToSetRoundTripsPrefixSets) {
  BddManager bdd;
  const auto set = permitted_set(Acl::parse(
      {"deny dst 1.0.0.0/8", "permit dst 10.20.0.0/16 dport 100-1000", "permit src 9.0.0.0/8"}));
  const auto back = bdd.to_set(bdd.from_set(set));
  EXPECT_TRUE(back.equals(set));
  EXPECT_EQ(back.volume(), set.volume());
}

TEST(Bdd, ToSetHandlesNonPrefixMasks) {
  // The union of two packets differing only in a middle bit fixes a
  // non-contiguous bit mask — the conversion must split on the free bit
  // rather than emit one interval.
  BddManager bdd;
  auto p = packet_to("1.2.3.4");
  p.dport = 5;  // 0b101
  auto q = p;
  q.dport = 7;  // 0b111
  const auto node = bdd.lor(bdd.from_packet(p), bdd.from_packet(q));
  const auto set = bdd.to_set(node);
  EXPECT_EQ(set.volume(), Volume{2});
  EXPECT_TRUE(set.contains(p));
  EXPECT_TRUE(set.contains(q));
  auto r = p;
  r.dport = 6;
  EXPECT_FALSE(set.contains(r));
}

TEST(Bdd, ToSetOfTerminals) {
  BddManager bdd;
  EXPECT_TRUE(bdd.to_set(BddManager::kFalse).is_empty());
  EXPECT_TRUE(bdd.to_set(BddManager::kTrue).equals(PacketSet::all()));
}

// Cross-validation: BDD algebra agrees with the hypercube engine on random
// prefix/port-structured sets.
class BddAgreesWithPacketSet : public ::testing::TestWithParam<unsigned> {
 protected:
  PacketSet random_set(std::mt19937& rng) {
    std::uniform_int_distribution<int> n_rules(1, 5);
    std::uniform_int_distribution<int> octet(0, 255);
    std::uniform_int_distribution<int> len_choice(0, 2);
    std::uniform_int_distribution<int> action(0, 1);
    std::vector<AclRule> rules;
    const int n = n_rules(rng);
    for (int i = 0; i < n; ++i) {
      Match m;
      const std::uint8_t lens[] = {8, 16, 24};
      m.dst = Prefix{Ipv4{10, static_cast<std::uint8_t>(octet(rng)),
                          static_cast<std::uint8_t>(octet(rng)), 0},
                     lens[len_choice(rng)]};
      if (octet(rng) < 64) m.dport = PortRange{443, 8443};
      rules.push_back({action(rng) ? Action::Permit : Action::Deny, m});
    }
    return permitted_set(Acl{rules, action(rng) ? Action::Permit : Action::Deny});
  }
};

TEST_P(BddAgreesWithPacketSet, AlgebraAndVolumesMatch) {
  std::mt19937 rng(GetParam());
  BddManager bdd;
  const auto a = random_set(rng);
  const auto b = random_set(rng);
  const auto na = bdd.from_set(a);
  const auto nb = bdd.from_set(b);

  EXPECT_EQ(bdd.volume(na), a.volume());
  EXPECT_EQ(bdd.volume(nb), b.volume());
  EXPECT_EQ(bdd.volume(bdd.land(na, nb)), (a & b).volume());
  EXPECT_EQ(bdd.volume(bdd.lor(na, nb)), (a | b).volume());
  EXPECT_EQ(bdd.volume(bdd.ldiff(na, nb)), (a - b).volume());
  EXPECT_EQ(bdd.volume(bdd.lnot(na)), a.complement().volume());

  // Canonical equality mirrors set equality.
  EXPECT_EQ(BddManager::equal(na, nb), a.equals(b));
  EXPECT_EQ(bdd.ldiff(na, nb) == BddManager::kFalse, b.contains(a));

  // Pointwise agreement on samples from both representations.
  if (!a.is_empty()) {
    EXPECT_TRUE(bdd.contains(na, a.sample()));
    const auto witness = bdd.sample(na);
    ASSERT_TRUE(witness.has_value());
    EXPECT_TRUE(a.contains(*witness));
  }

  // to_set is exact: converting back yields the original set.
  EXPECT_TRUE(bdd.to_set(na).equals(a));
  EXPECT_TRUE(bdd.to_set(bdd.land(na, nb)).equals(a & b));
  EXPECT_TRUE(bdd.to_set(bdd.ldiff(na, nb)).equals(a - b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddAgreesWithPacketSet, ::testing::Range(1u, 26u));

}  // namespace
}  // namespace jinjing::net
