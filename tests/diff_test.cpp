#include "core/diff.h"

#include <gtest/gtest.h>

#include <random>

#include "net/acl_algebra.h"

namespace jinjing::core {
namespace {

using net::Acl;
using net::AclRule;

TEST(Lcs, IdenticalListsFullyMarked) {
  const auto rules = Acl::parse({"deny dst 1.0.0.0/8", "permit all"}).rules();
  const auto marks = lcs_marks(rules, rules);
  EXPECT_EQ(marks.in_a, (std::vector<bool>{true, true}));
  EXPECT_EQ(marks.in_b, (std::vector<bool>{true, true}));
}

TEST(Lcs, InsertionMarksOnlyCommonPart) {
  const auto before = Acl::parse({"deny dst 1.0.0.0/8", "permit all"}).rules();
  const auto after =
      Acl::parse({"deny dst 1.0.0.0/8", "deny dst 9.0.0.0/8", "permit all"}).rules();
  const auto marks = lcs_marks(before, after);
  EXPECT_EQ(marks.in_a, (std::vector<bool>{true, true}));
  EXPECT_EQ(marks.in_b, (std::vector<bool>{true, false, true}));
}

TEST(Lcs, DisjointListsShareNothing) {
  const auto a = Acl::parse({"deny dst 1.0.0.0/8"}).rules();
  const auto b = Acl::parse({"permit dst 2.0.0.0/8"}).rules();
  const auto marks = lcs_marks(a, b);
  EXPECT_EQ(marks.in_a, (std::vector<bool>{false}));
  EXPECT_EQ(marks.in_b, (std::vector<bool>{false}));
}

TEST(Lcs, ReorderKeepsOneCopy) {
  // Swapping two rules: LCS keeps one; the two positions of the other are
  // the differential.
  const auto a = Acl::parse({"deny dst 1.0.0.0/8", "deny dst 2.0.0.0/8"}).rules();
  const auto b = Acl::parse({"deny dst 2.0.0.0/8", "deny dst 1.0.0.0/8"}).rules();
  const auto marks = lcs_marks(a, b);
  int common = 0;
  for (const bool m : marks.in_a) common += m;
  EXPECT_EQ(common, 1);
}

TEST(DifferentialRules, CapturesAddedAndRemoved) {
  const auto before = Acl::parse({"deny dst 1.0.0.0/8", "deny dst 2.0.0.0/8", "permit all"});
  const auto after = Acl::parse({"deny dst 2.0.0.0/8", "deny dst 3.0.0.0/8", "permit all"});
  const auto diff = differential_rules(before, after);
  ASSERT_EQ(diff.size(), 2u);
  EXPECT_EQ(diff[0], net::parse_rule("deny dst 1.0.0.0/8"));  // removed
  EXPECT_EQ(diff[1], net::parse_rule("deny dst 3.0.0.0/8"));  // added
}

TEST(DifferentialRules, EmptyWhenUnchanged) {
  const auto acl = Acl::parse({"deny dst 1.0.0.0/8", "permit all"});
  EXPECT_TRUE(differential_rules(acl, acl).empty());
}

TEST(DifferentialRules, DefaultActionChangeIsMatchAll) {
  const Acl before{{net::parse_rule("deny dst 1.0.0.0/8")}, net::Action::Permit};
  const Acl after{{net::parse_rule("deny dst 1.0.0.0/8")}, net::Action::Deny};
  const auto diff = differential_rules(before, after);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_TRUE(diff[0].match.is_any());
}

TEST(RelatedRules, KeepsOnlyOverlapping) {
  const auto acl = Acl::parse(
      {"deny dst 1.0.0.0/8", "permit dst 1.2.0.0/16", "deny dst 9.0.0.0/8", "permit all"});
  const std::vector<AclRule> diff = {net::parse_rule("deny dst 1.2.3.0/24")};
  const auto reduced = related_rules(acl, diff);
  // 1/8 and 1.2/16 and permit-all overlap the /24; 9/8 does not.
  ASSERT_EQ(reduced.size(), 3u);
  EXPECT_EQ(reduced.rules()[0], net::parse_rule("deny dst 1.0.0.0/8"));
  EXPECT_EQ(reduced.rules()[1], net::parse_rule("permit dst 1.2.0.0/16"));
  EXPECT_EQ(reduced.rules()[2], net::parse_rule("permit all"));
  EXPECT_EQ(reduced.default_action(), acl.default_action());
}

TEST(RelatedRules, EmptyDiffDropsEverything) {
  const auto acl = Acl::parse({"deny dst 1.0.0.0/8", "permit all"});
  EXPECT_TRUE(related_rules(acl, {}).empty());
}

// Theorem 4.1 property: for random ACL pairs, the reduced pair is
// equivalent exactly when the original pair is (pointwise, via the exact
// header-space engine).
class Theorem41 : public ::testing::TestWithParam<unsigned> {};

TEST_P(Theorem41, ReducedEquivalenceMatchesOriginal) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> octet(0, 5);
  std::uniform_int_distribution<int> action(0, 1);
  std::uniform_int_distribution<int> n_rules(1, 6);
  std::uniform_int_distribution<int> mutate(0, 2);

  const auto random_rule = [&]() {
    net::Match m;
    m.dst = net::Prefix{net::Ipv4{static_cast<std::uint8_t>(octet(rng)), 0, 0, 0}, 8};
    return AclRule{action(rng) ? net::Action::Permit : net::Action::Deny, m};
  };

  std::vector<AclRule> rules;
  const int n = n_rules(rng);
  for (int i = 0; i < n; ++i) rules.push_back(random_rule());
  const Acl before{rules};

  // Mutate: drop / insert / replace a random rule.
  std::vector<AclRule> mutated = rules;
  const auto pos = static_cast<std::size_t>(std::uniform_int_distribution<int>(
      0, static_cast<int>(mutated.size()) - 1)(rng));
  switch (mutate(rng)) {
    case 0: mutated.erase(mutated.begin() + static_cast<std::ptrdiff_t>(pos)); break;
    case 1: mutated.insert(mutated.begin() + static_cast<std::ptrdiff_t>(pos), random_rule()); break;
    default: mutated[pos] = random_rule(); break;
  }
  const Acl after{mutated};

  const auto diff = differential_rules(before, after);
  const auto reduced_before = related_rules(before, diff);
  const auto reduced_after = related_rules(after, diff);

  EXPECT_EQ(net::equivalent(before, after), net::equivalent(reduced_before, reduced_after))
      << to_string(before) << "--\n"
      << to_string(after);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem41, ::testing::Range(1u, 41u));

// The group form the checker actually relies on: a two-hop "path" whose
// slots each carry an ACL, reduced by the pooled Diff_Ω of
// reduce_by_differential. The path decision is the conjunction of the hop
// decisions, so group consistency is equality of the intersected permitted
// sets — and it must agree between the full ACLs and the reduced groups.
class Theorem41Group : public ::testing::TestWithParam<unsigned> {};

TEST_P(Theorem41Group, ReducedGroupConsistencyMatchesFullAcls) {
  std::mt19937 rng(GetParam() + 1000);
  std::uniform_int_distribution<int> octet(0, 5);
  std::uniform_int_distribution<int> action(0, 1);
  std::uniform_int_distribution<int> n_rules(1, 5);
  std::uniform_int_distribution<int> mutate(0, 3);

  const auto random_rule = [&]() {
    net::Match m;
    m.dst = net::Prefix{net::Ipv4{static_cast<std::uint8_t>(octet(rng)), 0, 0, 0}, 8};
    return AclRule{action(rng) ? net::Action::Permit : net::Action::Deny, m};
  };
  const auto random_acl = [&]() {
    std::vector<AclRule> rules;
    const int n = n_rules(rng);
    for (int i = 0; i < n; ++i) rules.push_back(random_rule());
    return Acl{std::move(rules)};
  };
  // Mutate: keep / drop / insert / replace a random rule.
  const auto mutated = [&](const Acl& acl) {
    std::vector<AclRule> rules{acl.rules().begin(), acl.rules().end()};
    const auto pos = static_cast<std::size_t>(std::uniform_int_distribution<int>(
        0, static_cast<int>(rules.size()) - 1)(rng));
    switch (mutate(rng)) {
      case 0: break;
      case 1: rules.erase(rules.begin() + static_cast<std::ptrdiff_t>(pos)); break;
      case 2:
        rules.insert(rules.begin() + static_cast<std::ptrdiff_t>(pos), random_rule());
        break;
      default: rules[pos] = random_rule(); break;
    }
    return Acl{std::move(rules)};
  };

  topo::Topology topo;
  const auto dev = topo.add_device("R");
  const topo::AclSlot s1{topo.add_interface(dev, "i1"), topo::Dir::In};
  const topo::AclSlot s2{topo.add_interface(dev, "i2"), topo::Dir::In};
  const Acl l1 = random_acl();
  const Acl l2 = random_acl();
  topo.bind_acl(s1, l1);
  topo.bind_acl(s2, l2);
  const Acl l1p = mutated(l1);
  const Acl l2p = mutated(l2);
  topo::AclUpdate update;
  update.emplace(s1, l1p);
  update.emplace(s2, l2p);

  const topo::ConfigView before{topo};
  const topo::ConfigView after{topo, &update};
  const ReducedGroups groups = reduce_by_differential(before, after, {s1, s2});

  const auto group_set = [](const Acl& a, const Acl& b) {
    return net::permitted_set(a) & net::permitted_set(b);
  };
  const bool full_consistent = group_set(l1, l2).equals(group_set(l1p, l2p));
  const bool reduced_consistent =
      group_set(groups.before.at(s1), groups.before.at(s2))
          .equals(group_set(groups.after.at(s1), groups.after.at(s2)));
  EXPECT_EQ(full_consistent, reduced_consistent)
      << to_string(l1) << "--\n" << to_string(l1p) << "--\n"
      << to_string(l2) << "--\n" << to_string(l2p);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem41Group, ::testing::Range(1u, 41u));

}  // namespace
}  // namespace jinjing::core
