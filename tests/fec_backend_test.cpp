// Backend equivalence and cache regression for equivalence-class
// refinement: the hypercube and BDD backends must produce the same
// partition on every input, parallel refinement must match sequential,
// FecCache hits must return exactly the cold derivation, and the
// incremental SMT session must agree with the per-query-solver baseline.
#include "topo/fec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "core/checker.h"
#include "gen/fixtures.h"
#include "gen/scenario.h"
#include "gen/wan.h"
#include "net/acl_algebra.h"
#include "topo/fec_cache.h"

namespace jinjing::topo {
namespace {

FecOptions with(SetBackend backend, unsigned threads = 1) {
  FecOptions o;
  o.backend = backend;
  o.threads = threads;
  return o;
}

/// Partitions are unordered: equal iff same size and every class of `a`
/// has an equal class in `b` (classes are pairwise disjoint, so a
/// bijection follows).
bool same_partition(const std::vector<net::PacketSet>& a, const std::vector<net::PacketSet>& b) {
  if (a.size() != b.size()) return false;
  return std::all_of(a.begin(), a.end(), [&](const net::PacketSet& cls) {
    return std::any_of(b.begin(), b.end(),
                       [&](const net::PacketSet& other) { return cls.equals(other); });
  });
}

gen::WanParams randomized_params(unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> small(1, 2);
  std::uniform_int_distribution<std::size_t> rules(4, 10);
  std::uniform_int_distribution<std::size_t> asym(0, 4);
  gen::WanParams params;
  params.cores = small(rng) + 1;
  params.aggs = small(rng) + 1;
  params.cells = small(rng);
  params.gateways_per_cell = small(rng);
  params.prefixes_per_gateway = small(rng);
  params.rules_per_acl = rules(rng);
  params.asymmetry = asym(rng);
  params.seed = seed;
  return params;
}

class BackendEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(BackendEquivalence, GlobalFecsMatchOnRandomWan) {
  const auto wan = gen::make_wan(randomized_params(GetParam()));
  const auto cube =
      forwarding_equivalence_classes(wan.topo, wan.scope, wan.traffic, with(SetBackend::Hypercube));
  const auto bdd =
      forwarding_equivalence_classes(wan.topo, wan.scope, wan.traffic, with(SetBackend::Bdd));
  EXPECT_EQ(cube.size(), bdd.size());
  EXPECT_TRUE(same_partition(cube, bdd));
}

TEST_P(BackendEquivalence, PerEntryClassesMatchOnRandomWan) {
  const auto wan = gen::make_wan(randomized_params(GetParam()));
  const auto cube = per_entry_equivalence_classes(wan.topo, wan.scope, wan.traffic,
                                                  with(SetBackend::Hypercube));
  const auto bdd =
      per_entry_equivalence_classes(wan.topo, wan.scope, wan.traffic, with(SetBackend::Bdd));
  ASSERT_EQ(cube.size(), bdd.size());
  for (std::size_t i = 0; i < cube.size(); ++i) {
    EXPECT_EQ(cube[i].entry, bdd[i].entry);
    EXPECT_TRUE(same_partition(cube[i].classes, bdd[i].classes)) << "entry " << cube[i].entry;
  }
}

TEST_P(BackendEquivalence, ParallelRefinementMatchesSequential) {
  const auto wan = gen::make_wan(randomized_params(GetParam()));
  for (const auto backend : {SetBackend::Hypercube, SetBackend::Bdd}) {
    const auto sequential =
        forwarding_equivalence_classes(wan.topo, wan.scope, wan.traffic, with(backend, 1));
    const auto parallel =
        forwarding_equivalence_classes(wan.topo, wan.scope, wan.traffic, with(backend, 3));
    EXPECT_TRUE(same_partition(sequential, parallel)) << to_string(backend);

    const auto seq_entries =
        per_entry_equivalence_classes(wan.topo, wan.scope, wan.traffic, with(backend, 1));
    const auto par_entries =
        per_entry_equivalence_classes(wan.topo, wan.scope, wan.traffic, with(backend, 3));
    ASSERT_EQ(seq_entries.size(), par_entries.size());
    for (std::size_t i = 0; i < seq_entries.size(); ++i) {
      EXPECT_EQ(seq_entries[i].entry, par_entries[i].entry);
      EXPECT_TRUE(same_partition(seq_entries[i].classes, par_entries[i].classes));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendEquivalence, ::testing::Range(1u, 9u));

TEST(BackendEquivalence, RefineIntoAtomsMatchesOnRandomSets) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> octet(0, 255);
  std::uniform_int_distribution<int> len_choice(0, 2);
  std::uniform_int_distribution<int> action(0, 1);
  const auto random_set = [&] {
    std::vector<net::AclRule> rules;
    std::uniform_int_distribution<int> n_rules(1, 4);
    const int n = n_rules(rng);
    for (int i = 0; i < n; ++i) {
      net::Match m;
      const std::uint8_t lens[] = {8, 16, 24};
      m.dst = net::Prefix{net::Ipv4{10, static_cast<std::uint8_t>(octet(rng)),
                                    static_cast<std::uint8_t>(octet(rng)), 0},
                          lens[len_choice(rng)]};
      if (octet(rng) < 80) m.dport = net::PortRange{100, 9000};
      rules.push_back({action(rng) ? net::Action::Permit : net::Action::Deny, m});
    }
    return net::permitted_set(net::Acl{rules, net::Action::Deny});
  };
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<net::PacketSet> preds;
    std::uniform_int_distribution<int> n_preds(1, 5);
    const int n = n_preds(rng);
    for (int i = 0; i < n; ++i) preds.push_back(random_set());
    const auto universe = net::PacketSet::all();
    const auto cube = refine_into_atoms(universe, preds, with(SetBackend::Hypercube));
    const auto bdd = refine_into_atoms(universe, preds, with(SetBackend::Bdd));
    EXPECT_TRUE(same_partition(cube, bdd)) << "trial " << trial;
    // Atoms partition the universe and every predicate is constant per atom.
    for (const auto& atoms : {cube, bdd}) {
      net::PacketSet covered;
      for (const auto& atom : atoms) {
        EXPECT_FALSE(atom.is_empty());
        EXPECT_FALSE(covered.intersects(atom));
        covered = (covered | atom).compact();
        for (const auto& pred : preds) {
          EXPECT_TRUE(pred.contains(atom) || !pred.intersects(atom));
        }
      }
      EXPECT_TRUE(covered.equals(universe));
    }
  }
}

TEST(FecCacheTest, WarmHitReturnsIdenticalClasses) {
  const auto wan = gen::make_wan(gen::small_wan());
  FecCache cache;
  for (const auto backend : {SetBackend::Hypercube, SetBackend::Bdd}) {
    const auto options = with(backend);
    const auto cold = cache.entry_classes(wan.topo, wan.scope, wan.traffic, options);
    const auto warm = cache.entry_classes(wan.topo, wan.scope, wan.traffic, options);
    // A hit returns the very same payload, which in turn matches a fresh
    // uncached derivation.
    EXPECT_EQ(cold.get(), warm.get());
    const auto fresh = per_entry_equivalence_classes(wan.topo, wan.scope, wan.traffic, options);
    ASSERT_EQ(cold->size(), fresh.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      EXPECT_EQ((*cold)[i].entry, fresh[i].entry);
      EXPECT_TRUE(same_partition((*cold)[i].classes, fresh[i].classes));
    }

    const auto global_cold = cache.global_classes(wan.topo, wan.scope, wan.traffic, options);
    const auto global_warm = cache.global_classes(wan.topo, wan.scope, wan.traffic, options);
    EXPECT_EQ(global_cold.get(), global_warm.get());
    EXPECT_TRUE(same_partition(
        *global_cold, forwarding_equivalence_classes(wan.topo, wan.scope, wan.traffic, options)));
  }
  EXPECT_EQ(cache.misses(), 4u);  // 2 backends x (entry + global)
  EXPECT_EQ(cache.hits(), 4u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(FecCacheTest, DistinctInputsDoNotCollide) {
  const auto wan = gen::make_wan(gen::small_wan());
  FecCache cache;
  const auto all = cache.global_classes(wan.topo, wan.scope, wan.traffic, with(SetBackend::Bdd));
  // Different entering set: must miss and give a different partition size
  // or content, never the cached payload.
  const auto narrowed = (wan.traffic & wan.gateway_dst_set(0)).compact();
  const auto sub = cache.global_classes(wan.topo, wan.scope, narrowed, with(SetBackend::Bdd));
  EXPECT_NE(all.get(), sub.get());
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
  // Backend is part of the key: same inputs, other backend misses too.
  const auto other =
      cache.global_classes(wan.topo, wan.scope, wan.traffic, with(SetBackend::Hypercube));
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_TRUE(same_partition(*all, *other));
  cache.clear();
  EXPECT_EQ(cache.hits() + cache.misses(), 0u);
}

TEST(FecCacheTest, CheckerCandidateLoopHitsCache) {
  // Fixer-style workload: repeated check() of different candidate updates
  // against one checker. Classes are update-independent, so the partition
  // is derived exactly once: the checker's plan cache serves every check
  // after the first, and a sibling checker sharing the FecCache (the
  // engine's check → fix layout) hits the cache instead of re-deriving.
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  core::CheckOptions options;
  options.set_backend = SetBackend::Bdd;
  options.fec_cache = std::make_shared<topo::FecCache>();
  core::Checker checker{smt, f.topo, f.scope, options};
  const auto baseline = checker.check({}, f.traffic);
  EXPECT_TRUE(baseline.consistent);
  EXPECT_EQ(checker.fec_cache().misses(), 1u);
  const auto broken = checker.check(f.running_example_update(), f.traffic);
  EXPECT_FALSE(broken.consistent);
  EXPECT_EQ(checker.fec_cache().misses(), 1u);

  smt::SmtContext sibling_smt;
  core::Checker sibling{sibling_smt, f.topo, f.scope, options};
  const auto again = sibling.check(f.running_example_update(), f.traffic);
  EXPECT_FALSE(again.consistent);
  EXPECT_EQ(sibling.fec_cache().misses(), 1u);
  EXPECT_GE(sibling.fec_cache().hits(), 1u);
}

struct SessionModes {
  SetBackend backend;
  bool incremental;
};

class CheckerBackendModes : public ::testing::TestWithParam<SessionModes> {
 protected:
  core::CheckOptions options() const {
    core::CheckOptions o;
    o.set_backend = GetParam().backend;
    o.incremental_smt = GetParam().incremental;
    return o;
  }
};

TEST_P(CheckerBackendModes, AgreesWithSeedPipelineOnFigure1) {
  const auto f = gen::make_figure1();
  smt::SmtContext smt;
  auto o = options();
  o.stop_at_first = false;
  core::Checker checker{smt, f.topo, f.scope, o};
  EXPECT_TRUE(checker.check({}, f.traffic).consistent);
  const auto result = checker.check(f.running_example_update(), f.traffic);
  EXPECT_FALSE(result.consistent);
  EXPECT_EQ(result.violations.size(), 2u);  // FECs {1} and {2,3}
  EXPECT_EQ(result.fec_count, 5u);
}

TEST_P(CheckerBackendModes, AgreesOnWanScenario) {
  const auto wan = gen::make_wan(gen::small_wan());
  smt::SmtContext smt;
  core::Checker checker{smt, wan.topo, wan.scope, options()};
  EXPECT_TRUE(checker.check({}, wan.traffic).consistent);
  // §7 Scenario 2 (ingress→egress ACL relocation) breaks intra-cell
  // reachability; every backend/solver mode must flag it.
  EXPECT_FALSE(checker.check(gen::ingress_to_egress_update(wan), wan.traffic).consistent);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, CheckerBackendModes,
    ::testing::Values(SessionModes{SetBackend::Hypercube, false},
                      SessionModes{SetBackend::Hypercube, true},
                      SessionModes{SetBackend::Bdd, false}, SessionModes{SetBackend::Bdd, true}),
    [](const ::testing::TestParamInfo<SessionModes>& info) {
      return std::string(to_string(info.param.backend)) +
             (info.param.incremental ? "_incremental" : "_fresh");
    });

}  // namespace
}  // namespace jinjing::topo
