#include "cli/cli.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace jinjing::cli {
namespace {

namespace fs = std::filesystem;

/// Temp-directory fixture writing the sample Figure 1 data files.
class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("jinjing_cli_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    const fs::path repo_data = fs::path(__FILE__).parent_path().parent_path() / "examples/data";
    for (const char* name : {"figure1.topo", "running_example.lai", "migration.lai",
                             "a1_new.acl", "a3_new.acl"}) {
      fs::copy_file(repo_data / name, dir_ / name, fs::copy_options::overwrite_existing);
    }
  }

  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  struct Result {
    int code;
    std::string out;
    std::string err;
  };

  Result invoke(std::vector<std::string> args) {
    std::ostringstream out;
    std::ostringstream err;
    const int code = run(args, out, err);
    return {code, out.str(), err.str()};
  }

  fs::path dir_;
};

TEST_F(CliTest, ShowPrintsPathsAndAcls) {
  const auto r = invoke({"show", "--network", path("figure1.topo")});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("<A:1, A:4, D:1, D:3>"), std::string::npos);
  EXPECT_NE(r.out.find("D:2-in: 3 rules"), std::string::npos);
  EXPECT_NE(r.out.find("traffic classes (per entry): 5"), std::string::npos);
}

TEST_F(CliTest, AuditCleanNetwork) {
  const auto r = invoke({"audit", "--network", path("figure1.topo")});
  EXPECT_EQ(r.code, 0) << r.out;
  EXPECT_NE(r.out.find("audit clean"), std::string::npos);
}

TEST_F(CliTest, AuditFlagsBrokenNetwork) {
  std::ofstream broken{dir_ / "broken.topo"};
  broken << "device A\ndevice B\n"
            "interface A:1 external\ninterface A:2\ninterface B:1\n"
            "link A:1 -> A:2 all\nlink A:2 -> B:1 all\n"  // B:1 is a sink
            "acl A:1-in\n  deny dst 1.0.0.0/8\n  deny dst 1.0.0.0/8\n  permit all\nend\n";
  broken.close();
  const auto r = invoke({"audit", "--network", (dir_ / "broken.topo").string()});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("traffic-sink"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("shadowed-rule"), std::string::npos) << r.out;
}

TEST_F(CliTest, RunCheckFixPipeline) {
  const auto r = invoke({"run", "--network", path("figure1.topo"), "--program",
                         path("running_example.lai"), "--acl",
                         "A1_new=" + path("a1_new.acl"), "--acl",
                         "A3_new=" + path("a3_new.acl")});
  EXPECT_EQ(r.code, 0) << r.err << r.out;
  EXPECT_NE(r.out.find("check: FAILED (inconsistent"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("fix: ok"), std::string::npos);
  EXPECT_NE(r.out.find("update plan:"), std::string::npos);
  EXPECT_NE(r.out.find("deny dst 6.0.0.0/8"), std::string::npos);
}

TEST_F(CliTest, RunMigrationGenerate) {
  const auto r = invoke({"run", "--network", path("figure1.topo"), "--program",
                         path("migration.lai")});
  EXPECT_EQ(r.code, 0) << r.err << r.out;
  EXPECT_NE(r.out.find("generate: ok"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("acl C:1-in"), std::string::npos);
}

TEST_F(CliTest, UsageOnBadInvocations) {
  EXPECT_EQ(invoke({}).code, 2);
  EXPECT_EQ(invoke({"bogus", "--network", path("figure1.topo")}).code, 2);
  EXPECT_EQ(invoke({"run", "--network", path("figure1.topo")}).code, 2);  // no program
  EXPECT_EQ(invoke({"show"}).code, 2);                                    // no network
  EXPECT_EQ(invoke({"show", "--network", "/nonexistent.topo"}).code, 2);
  const auto r = invoke({"show", "--network"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage"), std::string::npos);
}

TEST_F(CliTest, BadAclArgRejected) {
  const auto r = invoke({"run", "--network", path("figure1.topo"), "--program",
                         path("running_example.lai"), "--acl", "no_equals_sign"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("NAME=FILE"), std::string::npos);
}


TEST_F(CliTest, RunWithDiffStageRollback) {
  const auto r = invoke({"run", "--network", path("figure1.topo"), "--program",
                         path("running_example.lai"), "--acl",
                         "A1_new=" + path("a1_new.acl"), "--acl",
                         "A3_new=" + path("a3_new.acl"), "--diff", "--rollback", "--stage",
                         "availability"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("changes:"), std::string::npos);
  EXPECT_NE(r.out.find("staged deployment (availability-first):"), std::string::npos);
  EXPECT_NE(r.out.find("phase 1 push"), std::string::npos);
  EXPECT_NE(r.out.find("rollback plan:"), std::string::npos);
  // The rollback restores D2's original denies.
  EXPECT_NE(r.out.find("deny dst 1.0.0.0/8"), std::string::npos);
}

TEST_F(CliTest, BadStageModeRejected) {
  const auto r = invoke({"run", "--network", path("figure1.topo"), "--program",
                         path("running_example.lai"), "--stage", "yolo"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("availability"), std::string::npos);
}


TEST_F(CliTest, ReachVerdictsPerPacketAndSummary) {
  // Traffic 2 reaches D:3 via p0 even though p2 denies it.
  auto r = invoke({"reach", "--network", path("figure1.topo"), "--from", "A:1", "--to", "D:3",
                   "--packet", "dst 2.0.0.1"});
  EXPECT_EQ(r.code, 0) << r.out;
  EXPECT_NE(r.out.find("reachable"), std::string::npos);
  EXPECT_NE(r.out.find("denied"), std::string::npos);   // p2
  EXPECT_NE(r.out.find("permitted"), std::string::npos);  // p0

  // Traffic 6 is denied at A:1 everywhere.
  r = invoke({"reach", "--network", path("figure1.topo"), "--from", "A:1", "--to", "C:3",
              "--packet", "dst 6.0.0.1"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("unreachable"), std::string::npos);

  // Summary mode: only 5/8 gets from A:1 to C:3.
  r = invoke({"reach", "--network", path("figure1.topo"), "--from", "A:1", "--to", "C:3"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("dst 5.0.0.0/8"), std::string::npos);

  // No path between two exits.
  r = invoke({"reach", "--network", path("figure1.topo"), "--from", "C:3", "--to", "D:3"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("no path"), std::string::npos);
}

TEST_F(CliTest, GenEmitsLoadableNetwork) {
  const auto r = invoke({"gen", "--size", "small", "--seed", "5"});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ofstream file{dir_ / "gen.topo"};
  file << r.out;
  file.close();

  const auto audit = invoke({"audit", "--network", (dir_ / "gen.topo").string()});
  EXPECT_NE(audit.code, 2) << audit.err;  // parses and audits (warnings ok)
  const auto show = invoke({"show", "--network", (dir_ / "gen.topo").string()});
  EXPECT_EQ(show.code, 0);
  EXPECT_NE(show.out.find("devices: 8"), std::string::npos) << show.out;
}

TEST_F(CliTest, GenRejectsBadSize) {
  EXPECT_EQ(invoke({"gen", "--size", "galactic"}).code, 2);
}


TEST_F(CliTest, TraceShowsHopByHopVerdicts) {
  auto r = invoke({"trace", "--network", path("figure1.topo"), "--packet", "dst 2.0.0.1"});
  EXPECT_EQ(r.code, 0) << r.out;
  EXPECT_NE(r.out.find("rule 2 'deny dst 2.0.0.0/8' -> deny"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("=> DROPPED"), std::string::npos);
  EXPECT_NE(r.out.find("=> delivered"), std::string::npos);  // p0 delivers

  r = invoke({"trace", "--network", path("figure1.topo"), "--packet", "dst 6.0.0.1"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("dropped everywhere"), std::string::npos);

  EXPECT_EQ(invoke({"trace", "--network", path("figure1.topo")}).code, 2);  // no packet
}


TEST_F(CliTest, OutWritesReparsablePlan) {
  const auto plan_path = (dir_ / "plan.acl").string();
  const auto r = invoke({"run", "--network", path("figure1.topo"), "--program",
                         path("running_example.lai"), "--acl",
                         "A1_new=" + path("a1_new.acl"), "--acl",
                         "A3_new=" + path("a3_new.acl"), "--out", plan_path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("plan written to"), std::string::npos);
  std::ifstream file{plan_path};
  ASSERT_TRUE(file.good());
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_NE(content.str().find("acl A:1-in"), std::string::npos) << content.str();
  EXPECT_NE(content.str().find("end"), std::string::npos);
}


TEST_F(CliTest, DiffComparesAclsSemantically) {
  std::ofstream{dir_ / "x.acl"} << "deny dst 1.0.0.0/8\npermit all\n";
  std::ofstream{dir_ / "y.acl"} << "deny dst 1.0.0.0/9\ndeny dst 1.128.0.0/9\npermit all\n";
  std::ofstream{dir_ / "z.acl"} << "deny dst 1.0.0.0/9\npermit all\n";

  // x vs y: different rule lists, same semantics.
  auto r = invoke({"diff", "--acl-a", (dir_ / "x.acl").string(), "--acl-b",
                   (dir_ / "y.acl").string()});
  EXPECT_EQ(r.code, 0) << r.out;
  EXPECT_NE(r.out.find("equivalent"), std::string::npos);
  EXPECT_NE(r.out.find("- deny dst 1.0.0.0/8"), std::string::npos);
  EXPECT_NE(r.out.find("+ deny dst 1.0.0.0/9"), std::string::npos);

  // x vs z: z permits 1.128/9.
  r = invoke({"diff", "--acl-a", (dir_ / "x.acl").string(), "--acl-b",
              (dir_ / "z.acl").string()});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("NOT equivalent"), std::string::npos);
  EXPECT_NE(r.out.find("newly permits"), std::string::npos);

  EXPECT_EQ(invoke({"diff", "--acl-a", (dir_ / "x.acl").string()}).code, 2);
}


TEST_F(CliTest, TimeoutMsValidation) {
  const auto base = std::vector<std::string>{"run", "--network", path("figure1.topo"),
                                             "--program", path("running_example.lai"), "--acl",
                                             "A1_new=" + path("a1_new.acl"), "--acl",
                                             "A3_new=" + path("a3_new.acl")};

  auto with = [&](std::initializer_list<std::string> extra) {
    auto args = base;
    args.insert(args.end(), extra);
    return invoke(args);
  };

  // A generous deadline leaves the pipeline untouched.
  const auto ok = with({"--timeout-ms", "60000"});
  EXPECT_EQ(ok.code, 0) << ok.err;
  EXPECT_NE(ok.out.find("fix: ok"), std::string::npos);

  // 0 means "no deadline" and is accepted.
  EXPECT_EQ(with({"--timeout-ms", "0"}).code, 0);

  // Malformed values are usage errors.
  for (const char* bad : {"abc", "-5", "", "12moments", "999999999999"}) {
    const auto r = with({"--timeout-ms", bad});
    EXPECT_EQ(r.code, 2) << "value '" << bad << "'";
    EXPECT_NE(r.err.find("--timeout-ms"), std::string::npos) << r.err;
  }
  EXPECT_EQ(with({"--timeout-ms"}).code, 2);  // missing value
}

TEST_F(CliTest, FlagValidationSweep) {
  // Every malformed flag value is a usage error: exit 2, a one-line
  // "error:" diagnostic naming the flag, and no partial run on stdout.
  struct Case {
    std::vector<std::string> args;
    const char* needle;  // must appear in the first stderr line
  };
  const std::vector<Case> cases = {
      {{"run", "--network", path("figure1.topo"), "--program", path("running_example.lai"),
        "--threads", "abc"}, "--threads"},
      {{"run", "--network", path("figure1.topo"), "--program", path("running_example.lai"),
        "--threads", "0"}, "--threads"},
      {{"run", "--network", path("figure1.topo"), "--program", path("running_example.lai"),
        "--threads", "-3"}, "--threads"},
      {{"run", "--network", path("figure1.topo"), "--program", path("running_example.lai"),
        "--threads", "2048"}, "--threads"},
      {{"gen", "--size", "small", "--seed", "abc"}, "--seed"},
      {{"gen", "--size", "small", "--seed", "-1"}, "--seed"},
      {{"gen", "--size", "small", "--seed", "12moments"}, "--seed"},
      {{"serve", "--network", path("figure1.topo"), "--socket", "/tmp/x.sock",
        "--queue-depth", "0"}, "--queue-depth"},
      {{"serve", "--network", path("figure1.topo"), "--socket", "/tmp/x.sock",
        "--workers", "lots"}, "--workers"},
      {{"serve", "--network", path("figure1.topo"), "--socket", "/tmp/x.sock",
        "--keep-versions", "-2"}, "--keep-versions"},
      {{"serve", "--network", path("figure1.topo"), "--socket", "/tmp/x.sock",
        "--retain-jobs", "abc"}, "--retain-jobs"},
      {{"serve", "--network", path("figure1.topo"), "--socket", "/tmp/x.sock",
        "--retain-jobs", "0"}, "--retain-jobs"},
      {{"serve", "--network", path("figure1.topo")}, "--socket"},
      {{"client", "--socket", "/tmp/x.sock", "submit", "--deadline-ms", "0"}, "--deadline-ms"},
      {{"client", "--socket", "/tmp/x.sock", "submit", "--priority", "urgent"}, "--priority"},
      {{"client", "--socket", "/tmp/x.sock", "result", "--job", "1.5"}, "--job"},
      {{"client", "--socket", "/tmp/x.sock", "result", "--job", "1", "--wait-ms", "abc"},
       "--wait-ms"},
      {{"client", "--socket", "/tmp/x.sock", "submit", "--snapshot", "-1"}, "--snapshot"},
      {{"client", "--socket", "/tmp/x.sock", "frobnicate"}, "unknown client method"},
      {{"client", "--socket", "/tmp/x.sock", "status"}, "--job"},
      {{"client", "status", "--job", "1"}, "--socket"},
      {{"client", "--socket", "/tmp/x.sock", "submit"}, "--program"},
      {{"client", "--socket", "/tmp/x.sock"}, "METHOD"},
      {{"run", "--network", path("figure1.topo"), "--program", path("running_example.lai"),
        "--bogus-flag"}, "unknown option"},
      {{"frobnicate"}, "unknown command"},
  };
  for (const auto& test_case : cases) {
    const auto r = invoke(test_case.args);
    EXPECT_EQ(r.code, 2) << test_case.needle << ": " << r.err;
    EXPECT_TRUE(r.out.empty()) << test_case.needle << " produced output:\n" << r.out;
    const auto first_line = r.err.substr(0, r.err.find('\n'));
    EXPECT_NE(first_line.find(test_case.needle), std::string::npos)
        << "stderr first line '" << first_line << "' lacks '" << test_case.needle << "'";
  }
}

TEST_F(CliTest, ClientConnectFailureIsAnError) {
  const auto r = invoke({"client", "--socket", "/tmp/jinjing_no_such_socket.sock", "info"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("connect"), std::string::npos) << r.err;
}

TEST_F(CliTest, ReportJsonEmitsPipelineBreakdown) {
  const auto report_path = (dir_ / "report.json").string();
  const auto r = invoke({"run", "--network", path("figure1.topo"), "--program",
                         path("running_example.lai"), "--acl",
                         "A1_new=" + path("a1_new.acl"), "--acl",
                         "A3_new=" + path("a3_new.acl"), "--report-json", report_path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("report written to"), std::string::npos);

  std::ifstream file{report_path};
  ASSERT_TRUE(file.good());
  std::stringstream content;
  content << file.rdbuf();
  const auto json = content.str();

  // One entry per command (check; fix), with the per-stage breakdown.
  for (const char* key :
       {"\"commands\"", "\"command\": \"check\"", "\"command\": \"fix\"", "\"obligations\"",
        "\"executed\"", "\"cancelled\"", "\"obligations_skipped\"", "\"plan_seconds\"",
        "\"compile_seconds\"", "\"solve_seconds\"", "\"execute_seconds\"", "\"smt_queries\"",
        "\"totals\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key << " in:\n" << json;
  }

  // An unwritable path is a runtime error, not silent success.
  const auto bad = invoke({"run", "--network", path("figure1.topo"), "--program",
                           path("running_example.lai"), "--acl",
                           "A1_new=" + path("a1_new.acl"), "--acl",
                           "A3_new=" + path("a3_new.acl"), "--report-json",
                           (dir_ / "no_such_dir" / "report.json").string()});
  EXPECT_NE(bad.code, 0);
}

TEST_F(CliTest, ReportJsonEmbedsObservabilityCounters) {
  const auto report_path = (dir_ / "report.json").string();
  const auto r = invoke({"run", "--network", path("figure1.topo"), "--program",
                         path("running_example.lai"), "--acl",
                         "A1_new=" + path("a1_new.acl"), "--acl",
                         "A3_new=" + path("a3_new.acl"), "--report-json", report_path});
  ASSERT_EQ(r.code, 0) << r.err;

  std::ifstream file{report_path};
  std::stringstream content;
  content << file.rdbuf();
  const auto json = content.str();

  EXPECT_NE(json.find("\"observability\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // The pipeline ran: plan/compile/solve counters must be nonzero.
  for (const char* key : {"\"smt_queries\": 0", "\"plan_builds\": 0",
                          "\"smt_sessions_built\": 0", "\"obligations_planned\": 0"}) {
    EXPECT_EQ(json.find(key), std::string::npos) << "zero counter " << key;
  }
}

TEST_F(CliTest, MetricsWritesPrometheusText) {
  const auto metrics_path = (dir_ / "metrics.prom").string();
  const auto r = invoke({"run", "--network", path("figure1.topo"), "--program",
                         path("running_example.lai"), "--acl",
                         "A1_new=" + path("a1_new.acl"), "--acl",
                         "A3_new=" + path("a3_new.acl"), "--metrics", metrics_path});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("metrics written to"), std::string::npos);

  std::ifstream file{metrics_path};
  ASSERT_TRUE(file.good());
  std::stringstream content;
  content << file.rdbuf();
  const auto text = content.str();
  EXPECT_NE(text.find("# TYPE jinjing_smt_queries_total counter"), std::string::npos);
  EXPECT_EQ(text.find("jinjing_smt_queries_total 0\n"), std::string::npos)
      << "pipeline ran, smt_queries must be nonzero:\n" << text;
  EXPECT_NE(text.find("jinjing_smt_solve_micros_bucket{le=\"+Inf\"}"), std::string::npos);
  EXPECT_NE(text.find("# TYPE jinjing_bdd_nodes gauge"), std::string::npos);
}

TEST_F(CliTest, TraceWritesChromeTraceJson) {
  const auto trace_path = (dir_ / "trace.json").string();
  const auto r = invoke({"run", "--network", path("figure1.topo"), "--program",
                         path("running_example.lai"), "--acl",
                         "A1_new=" + path("a1_new.acl"), "--acl",
                         "A3_new=" + path("a3_new.acl"), "--trace", trace_path});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("trace written to"), std::string::npos);

  std::ifstream file{trace_path};
  ASSERT_TRUE(file.good());
  std::stringstream content;
  content << file.rdbuf();
  const auto text = content.str();
  EXPECT_EQ(text.find("{\"displayTimeUnit\": \"ms\", \"traceEvents\": ["), 0u);
  for (const char* span : {"\"engine.check\"", "\"engine.fix\"", "\"checker.plan\"",
                           "\"checker.compile\"", "\"smt.query\"", "\"fix.search\""}) {
    EXPECT_NE(text.find(span), std::string::npos) << "missing span " << span;
  }
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(CliTest, UnwritableExportPathsAreErrors) {
  const auto base = std::vector<std::string>{"run", "--network", path("figure1.topo"),
                                             "--program", path("running_example.lai"), "--acl",
                                             "A1_new=" + path("a1_new.acl"), "--acl",
                                             "A3_new=" + path("a3_new.acl")};
  const auto bad_path = (dir_ / "no_such_dir" / "out.file").string();
  for (const char* flag : {"--report-json", "--metrics", "--trace", "--out"}) {
    auto args = base;
    args.push_back(flag);
    args.push_back(bad_path);
    const auto r = invoke(args);
    EXPECT_EQ(r.code, 2) << flag;
    EXPECT_NE(r.err.find("cannot write"), std::string::npos) << flag << ": " << r.err;
    EXPECT_EQ(r.out.find("written to"), std::string::npos)
        << flag << " claimed success:\n" << r.out;
  }
}

}  // namespace
}  // namespace jinjing::cli
