#include "core/neighborhood.h"

#include <gtest/gtest.h>

#include "gen/fixtures.h"
#include "topo/fec.h"

namespace jinjing::core {
namespace {

using gen::Figure1;

TEST(DecisionModels, CollectsBothSides) {
  const auto f = gen::make_figure1();
  const auto update = f.running_example_update();
  const topo::ConfigView before{f.topo};
  const topo::ConfigView after{f.topo, &update};
  const auto models = DecisionModels::from_views(before, after);
  // 5 bound slots after the update (A1, A3-out, C1, D2 + originals) x 2.
  EXPECT_EQ(models.size(), 2 * after.bound_slots().size());
}

TEST(DecisionModels, AgreementRegionContainsWitness) {
  const auto f = gen::make_figure1();
  const auto update = f.running_example_update();
  const topo::ConfigView before{f.topo};
  const topo::ConfigView after{f.topo, &update};
  const auto models = DecisionModels::from_views(before, after);
  for (int k = 1; k <= 7; ++k) {
    const auto h = Figure1::traffic_packet(k);
    const auto region = models.agreement_region(h);
    EXPECT_TRUE(region.contains(h)) << k;
  }
}

TEST(Neighborhood, RunningExampleEnlargesToWholeTrafficClass) {
  // The paper: "the entire Traffic 2 is identified as a neighborhood".
  const auto f = gen::make_figure1();
  const auto update = f.running_example_update();
  const topo::ConfigView before{f.topo};
  const topo::ConfigView after{f.topo, &update};
  const auto models = DecisionModels::from_views(before, after);

  const auto fec2 = Figure1::traffic_class(2) | Figure1::traffic_class(3);
  const auto h = Figure1::traffic_packet(2);
  const auto cube = enlarge_neighborhood(h, fec2, models);
  EXPECT_TRUE(net::PacketSet{cube}.equals(Figure1::traffic_class(2)));

  const auto h1 = Figure1::traffic_packet(1);
  const auto cube1 = enlarge_neighborhood(h1, Figure1::traffic_class(1), models);
  EXPECT_TRUE(net::PacketSet{cube1}.equals(Figure1::traffic_class(1)));
}

TEST(Neighborhood, AllMembersBehaveLikeRepresentative) {
  const auto f = gen::make_figure1();
  const auto update = f.running_example_update();
  const topo::ConfigView before{f.topo};
  const topo::ConfigView after{f.topo, &update};
  const auto models = DecisionModels::from_views(before, after);

  const auto fecs = topo::forwarding_equivalence_classes(f.topo, f.scope, f.traffic);
  for (const auto& fec : fecs) {
    const auto h = fec.sample();
    const auto cube = enlarge_neighborhood(h, fec, models);
    const net::PacketSet neighborhood{cube};
    EXPECT_TRUE(fec.contains(neighborhood));
    // Every ACL (before and after) is constant on the neighborhood.
    for (const auto slot : after.bound_slots()) {
      for (const auto* view : {&before, &after}) {
        const auto permitted = net::permitted_set(view->acl(slot));
        EXPECT_TRUE(permitted.contains(neighborhood) || !permitted.intersects(neighborhood));
      }
    }
  }
}

TEST(Neighborhood, PointFecYieldsPointOrLarger) {
  const auto f = gen::make_figure1();
  const topo::ConfigView view{f.topo};
  const auto models = DecisionModels::from_views(view, view);
  const auto h = Figure1::traffic_packet(4);
  const auto cube = enlarge_neighborhood(h, net::PacketSet::point(h), models);
  EXPECT_TRUE(net::PacketSet{cube}.equals(net::PacketSet::point(h)));
}

TEST(Neighborhood, FieldsArePrefixAligned) {
  const auto f = gen::make_figure1();
  const auto update = f.running_example_update();
  const topo::ConfigView before{f.topo};
  const topo::ConfigView after{f.topo, &update};
  const auto models = DecisionModels::from_views(before, after);
  net::Packet h = Figure1::traffic_packet(2);
  h.sport = 1234;
  h.dport = 80;
  const auto cube =
      enlarge_neighborhood(h, Figure1::traffic_class(2) | Figure1::traffic_class(3), models);
  for (const auto field : net::kAllFields) {
    const auto iv = cube.interval(field);
    const auto size = iv.size();
    EXPECT_EQ(size & (size - 1), 0u) << "block size must be a power of two";
    EXPECT_EQ(iv.lo % size, 0u) << "block must be aligned";
  }
}

}  // namespace
}  // namespace jinjing::core
