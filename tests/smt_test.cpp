#include <gtest/gtest.h>

#include <random>

#include "net/acl_algebra.h"
#include "smt/acl_encoder.h"
#include "smt/context.h"
#include "smt/encode.h"

namespace jinjing::smt {
namespace {

using net::Acl;
using net::packet_to;

TEST(SmtEncode, IntervalMembership) {
  SmtContext smt;
  const auto h = smt.packet_vars();
  auto solver = smt.make_solver();
  solver.add(in_interval(h, net::Field::DstPort, net::Interval{80, 90}));
  const auto packet = smt.solve_for_packet(solver, h);
  ASSERT_TRUE(packet.has_value());
  EXPECT_GE(packet->dport, 80);
  EXPECT_LE(packet->dport, 90);

  solver.add(h.field(net::Field::DstPort) == smt.ctx().bv_val(100, 16));
  EXPECT_FALSE(smt.solve_for_packet(solver, h).has_value());
}

TEST(SmtEncode, PrefixMembership) {
  SmtContext smt;
  const auto h = smt.packet_vars();
  auto solver = smt.make_solver();
  solver.add(in_prefix(h, net::Field::DstIp, net::parse_prefix("10.20.0.0/16")));
  const auto packet = smt.solve_for_packet(solver, h);
  ASSERT_TRUE(packet.has_value());
  EXPECT_TRUE(net::parse_prefix("10.20.0.0/16").contains(packet->dip));
}

TEST(SmtEncode, MatchAgreesWithConcreteEvaluation) {
  SmtContext smt;
  const auto h = smt.packet_vars();
  const auto rule = net::parse_rule("permit src 10.0.0.0/8 dst 1.0.0.0/8 dport 80 proto tcp");

  net::Packet good;
  good.sip = net::parse_ipv4("10.1.1.1");
  good.dip = net::parse_ipv4("1.1.1.1");
  good.dport = 80;
  good.proto = 6;

  for (const auto& [packet, want] : {std::pair{good, true}, {packet_to("9.9.9.9"), false}}) {
    auto solver = smt.make_solver();
    solver.add(equals_packet(h, packet));
    solver.add(match_expr(h, rule.match));
    EXPECT_EQ(smt.solve_for_packet(solver, h).has_value(), want);
    EXPECT_EQ(rule.match.matches(packet), want);
  }
}

TEST(SmtEncode, SetMembershipMatchesPacketSet) {
  SmtContext smt;
  const auto h = smt.packet_vars();
  net::HyperCube c1;
  c1.set_interval(net::Field::DstIp, net::parse_prefix("1.0.0.0/8").interval());
  net::HyperCube c2;
  c2.set_interval(net::Field::DstIp, net::parse_prefix("3.0.0.0/8").interval());
  const auto set = net::PacketSet{c1} | net::PacketSet{c2};

  auto solver = smt.make_solver();
  solver.add(set_expr(h, set));
  const auto packet = smt.solve_for_packet(solver, h);
  ASSERT_TRUE(packet.has_value());
  EXPECT_TRUE(set.contains(*packet));

  auto empty_solver = smt.make_solver();
  empty_solver.add(set_expr(h, net::PacketSet::empty()));
  EXPECT_FALSE(smt.solve_for_packet(empty_solver, h).has_value());
}

TEST(SmtEncode, QueryCountAdvances) {
  SmtContext smt;
  const auto h = smt.packet_vars();
  auto solver = smt.make_solver();
  EXPECT_EQ(smt.query_count(), 0u);
  (void)smt.solve_for_packet(solver, h);
  EXPECT_EQ(smt.query_count(), 1u);
}

class AclEncoderStrategies : public ::testing::TestWithParam<EncoderStrategy> {};

TEST_P(AclEncoderStrategies, FirstMatchSemantics) {
  SmtContext smt;
  const auto h = smt.packet_vars();
  const auto acl = Acl::parse({"deny dst 1.0.0.0/8", "permit dst 1.2.0.0/16", "permit all"});
  const auto permits = acl_permits(h, acl, GetParam());

  // The shadowed /16 permit must not fire: deny wins for 1.2.x.x.
  auto solver = smt.make_solver();
  solver.add(equals_packet(h, packet_to("1.2.3.4")));
  solver.add(permits);
  EXPECT_FALSE(smt.solve_for_packet(solver, h).has_value());

  auto solver2 = smt.make_solver();
  solver2.add(equals_packet(h, packet_to("5.5.5.5")));
  solver2.add(permits);
  EXPECT_TRUE(smt.solve_for_packet(solver2, h).has_value());
}

TEST_P(AclEncoderStrategies, DefaultActionRespected) {
  SmtContext smt;
  const auto h = smt.packet_vars();
  const Acl deny_default{{net::parse_rule("permit dst 1.0.0.0/8")}, net::Action::Deny};
  const auto permits = acl_permits(h, deny_default, GetParam());

  auto solver = smt.make_solver();
  solver.add(equals_packet(h, packet_to("2.2.2.2")));
  solver.add(permits);
  EXPECT_FALSE(smt.solve_for_packet(solver, h).has_value());
}

TEST_P(AclEncoderStrategies, EmptyAclUsesDefault) {
  SmtContext smt;
  const auto h = smt.packet_vars();
  const auto permits = acl_permits(h, Acl::permit_all(), GetParam());
  auto solver = smt.make_solver();
  solver.add(!permits);
  EXPECT_FALSE(smt.solve_for_packet(solver, h).has_value());
}

INSTANTIATE_TEST_SUITE_P(Both, AclEncoderStrategies,
                         ::testing::Values(EncoderStrategy::Sequential, EncoderStrategy::Tree));

// Property: for random ACLs, the Sequential and Tree encodings are
// SMT-equivalent, and both agree with the header-space permitted_set.
class EncoderEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(EncoderEquivalence, TreeEqualsSequentialEqualsSetSemantics) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> action(0, 1);
  std::uniform_int_distribution<int> octet(0, 7);
  std::uniform_int_distribution<int> n_rules(1, 9);
  std::uniform_int_distribution<int> len_choice(0, 2);

  std::vector<net::AclRule> rules;
  const int n = n_rules(rng);
  for (int i = 0; i < n; ++i) {
    net::Match m;
    const std::uint8_t lens[] = {8, 16, 0};
    m.dst = net::Prefix{net::Ipv4{static_cast<std::uint8_t>(octet(rng)), 0, 0, 0},
                        lens[len_choice(rng)]};
    if (octet(rng) == 0) m.dport = net::PortRange{80, 443};
    rules.push_back({action(rng) ? net::Action::Permit : net::Action::Deny, m});
  }
  const Acl acl{rules};

  SmtContext smt;
  const auto h = smt.packet_vars();
  const auto seq = acl_permits(h, acl, EncoderStrategy::Sequential);
  const auto tree = acl_permits(h, acl, EncoderStrategy::Tree);

  // SMT-level equivalence: seq xor tree is unsat.
  auto solver = smt.make_solver();
  solver.add(seq != tree);
  EXPECT_FALSE(smt.solve_for_packet(solver, h).has_value());

  // Agreement with the exact set engine: (tree != in-permitted-set) unsat.
  const auto permitted = net::permitted_set(acl);
  auto solver2 = smt.make_solver();
  solver2.add(tree != set_expr(h, permitted));
  const auto witness = smt.solve_for_packet(solver2, h);
  EXPECT_FALSE(witness.has_value()) << (witness ? to_string(*witness) : "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncoderEquivalence, ::testing::Range(1u, 31u));

// A query that exceeds the per-query deadline surfaces as SmtTimeout —
// never as "unsat" (which the pipeline would read as "no violation").
TEST(SmtTimeoutDeadline, HardQueryThrowsInsteadOfReturningUnsat) {
  SmtContext smt;
  smt.set_timeout_ms(1);
  ASSERT_EQ(smt.timeout_ms(), 1u);

  const auto h = smt.packet_vars();
  auto solver = smt.make_solver();
  // Factor a 40-bit semiprime by bit-vector multiplication: far beyond a
  // 1 ms budget, so check() must come back unknown.
  auto& ctx = smt.ctx();
  const auto x = ctx.bv_const("factor_x", 64);
  const auto y = ctx.bv_const("factor_y", 64);
  solver.add(x * y == ctx.bv_val(std::uint64_t{1000003} * 1000033, 64));
  solver.add(z3::ugt(x, ctx.bv_val(1, 64)));
  solver.add(z3::ugt(y, ctx.bv_val(1, 64)));
  solver.add(z3::ule(x, y));
  EXPECT_THROW((void)smt.solve_for_packet(solver, h), SmtTimeout);
}

// A generous deadline never fires on easy queries: the configured timeout
// applies per solver without perturbing sat/unsat results.
TEST(SmtTimeoutDeadline, EasyQueriesUnaffectedByDeadline) {
  SmtContext smt;
  smt.set_timeout_ms(10000);

  const auto h = smt.packet_vars();
  auto sat = smt.make_solver();
  sat.add(in_interval(h, net::Field::DstPort, net::Interval{80, 90}));
  const auto packet = smt.solve_for_packet(sat, h);
  ASSERT_TRUE(packet.has_value());
  EXPECT_GE(packet->dport, 80);
  EXPECT_LE(packet->dport, 90);

  auto unsat = smt.make_solver();
  unsat.add(in_interval(h, net::Field::DstPort, net::Interval{80, 90}));
  unsat.add(h.field(net::Field::DstPort) == smt.ctx().bv_val(100, 16));
  EXPECT_FALSE(smt.solve_for_packet(unsat, h).has_value());
}

}  // namespace
}  // namespace jinjing::smt
