#include "topo/fec.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/fixtures.h"

namespace jinjing::topo {
namespace {

using gen::Figure1;

TEST(Fec, Figure1HasExactlyThePaperClasses) {
  const auto f = gen::make_figure1();
  const auto fecs = forwarding_equivalence_classes(f.topo, f.scope, f.traffic);
  ASSERT_EQ(fecs.size(), 5u);

  // The paper's classes: {1}, {2,3}, {4}, {5,6}, {7}.
  const std::vector<net::PacketSet> expected = {
      Figure1::traffic_class(1),
      Figure1::traffic_class(2) | Figure1::traffic_class(3),
      Figure1::traffic_class(4),
      Figure1::traffic_class(5) | Figure1::traffic_class(6),
      Figure1::traffic_class(7),
  };
  for (const auto& want : expected) {
    const bool found = std::any_of(fecs.begin(), fecs.end(),
                                   [&](const net::PacketSet& got) { return got.equals(want); });
    EXPECT_TRUE(found) << "missing FEC " << to_string(want);
  }
}

TEST(Fec, ClassesPartitionTheEnteringTraffic) {
  const auto f = gen::make_figure1();
  const auto fecs = forwarding_equivalence_classes(f.topo, f.scope, f.traffic);
  net::PacketSet covered;
  for (const auto& fec : fecs) {
    EXPECT_FALSE(fec.is_empty());
    EXPECT_FALSE(covered.intersects(fec)) << "classes overlap";
    covered = covered | fec;
  }
  EXPECT_TRUE(covered.equals(f.traffic));
}

TEST(Fec, MembersOfAClassUseTheSameEdges) {
  const auto f = gen::make_figure1();
  const auto fecs = forwarding_equivalence_classes(f.topo, f.scope, f.traffic);
  for (const auto& fec : fecs) {
    // Every edge predicate either contains the class or misses it entirely.
    for (const auto& edge : f.topo.edges()) {
      const bool inside = edge.predicate.contains(fec);
      const bool outside = !edge.predicate.intersects(fec);
      EXPECT_TRUE(inside || outside);
    }
  }
}

TEST(Fec, EmptyTrafficYieldsNoClasses) {
  const auto f = gen::make_figure1();
  EXPECT_TRUE(forwarding_equivalence_classes(f.topo, f.scope, net::PacketSet::empty()).empty());
}

TEST(RefineIntoAtoms, NoPredicatesKeepsUniverse) {
  const auto universe = Figure1::traffic_class(1) | Figure1::traffic_class(2);
  const auto atoms = refine_into_atoms(universe, {});
  ASSERT_EQ(atoms.size(), 1u);
  EXPECT_TRUE(atoms[0].equals(universe));
}

TEST(RefineIntoAtoms, PredicateConstantOnEachAtom) {
  const auto universe = net::PacketSet::all();
  const std::vector<net::PacketSet> preds = {
      Figure1::traffic_class(1) | Figure1::traffic_class(2),
      Figure1::traffic_class(2) | Figure1::traffic_class(3),
  };
  const auto atoms = refine_into_atoms(universe, preds);
  // Atoms: {1}, {2}, {3}, rest => 4 classes.
  EXPECT_EQ(atoms.size(), 4u);
  for (const auto& atom : atoms) {
    for (const auto& pred : preds) {
      EXPECT_TRUE(pred.contains(atom) || !pred.intersects(atom));
    }
  }
}

}  // namespace
}  // namespace jinjing::topo
