// Checking within a management scope Ω smaller than the network — the
// paper's normal deployment mode ("a cluster, a layer of routers, an
// availability zone"): devices outside Ω are invisible, traffic crossing
// the scope boundary defines the border interfaces.
#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/engine.h"
#include "core/fixer.h"
#include "gen/fixtures.h"
#include "lai/parser.h"
#include "lai/sema.h"
#include "net/acl_algebra.h"
#include "topo/paths.h"

namespace jinjing::core {
namespace {

using gen::Figure1;

/// The sub-scope {A, B} of Figure 1: entry A1; exits A3, A4 (toward C/D)
/// and B2 (toward C).
topo::Scope ab_scope(const gen::Figure1& f) {
  topo::Scope scope;
  scope.add(f.A);
  scope.add(f.B);
  return scope;
}

TEST(SubScope, PathsStopAtTheBoundary) {
  const auto f = gen::make_figure1();
  const auto paths = topo::enumerate_paths(f.topo, ab_scope(f));
  for (const auto& p : paths) {
    for (const auto& hop : p.hops()) {
      const auto device = f.topo.device_of(hop.iface);
      EXPECT_TRUE(device == f.A || device == f.B) << to_string(f.topo, p);
    }
  }
  // <A:1, A:2, B:1, B:2> plus the two single-device exits <A:1, A:3>,
  // <A:1, A:4>.
  EXPECT_EQ(paths.size(), 3u);
}

TEST(SubScope, CheckIgnoresOutOfScopeChanges) {
  // Changing D2 is invisible to a scope that ends at A/B.
  const auto f = gen::make_figure1();
  topo::AclUpdate update;
  update.emplace(topo::AclSlot{f.D2, topo::Dir::In}, net::Acl::permit_all());

  smt::SmtContext smt;
  Checker checker{smt, f.topo, ab_scope(f), {}};
  EXPECT_TRUE(checker.check(update, f.traffic).consistent);
}

TEST(SubScope, CheckCatchesInScopeViolation) {
  // Moving D2's denies onto A1 *is* visible: traffic 1/2 no longer exits
  // the sub-scope toward D.
  const auto f = gen::make_figure1();
  const auto update = f.running_example_update();

  smt::SmtContext smt;
  Checker checker{smt, f.topo, ab_scope(f), {}};
  const auto result = checker.check(update, f.traffic);
  ASSERT_FALSE(result.consistent);
  EXPECT_TRUE(Figure1::traffic_class(1).contains(result.violations[0].witness) ||
              Figure1::traffic_class(2).contains(result.violations[0].witness));
}

TEST(SubScope, FixRepairsWithinTheScope) {
  const auto f = gen::make_figure1();
  const auto update = f.running_example_update();

  std::vector<topo::AclSlot> allowed;
  for (const auto iface : {f.A1, f.A2, f.A3, f.A4, f.B1, f.B2}) {
    allowed.push_back({iface, topo::Dir::In});
    allowed.push_back({iface, topo::Dir::Out});
  }

  smt::SmtContext smt;
  Fixer fixer{smt, f.topo, ab_scope(f)};
  const auto fix = fixer.fix(update, f.traffic, allowed);
  ASSERT_TRUE(fix.success);

  smt::SmtContext smt2;
  Checker checker{smt2, f.topo, ab_scope(f)};
  EXPECT_TRUE(checker.check(fix.fixed_update, f.traffic).consistent);
  // Only in-scope interfaces were touched.
  for (const auto& action : fix.actions) {
    const auto device = f.topo.device_of(action.slot.iface);
    EXPECT_TRUE(device == f.A || device == f.B);
  }
}

TEST(SubScope, LaiProgramWithNarrowScope) {
  // The full LAI pipeline on the sub-scope. Moving "deny 6/8" from A1 to
  // the egress A4 is inconsistent within {A,B}: traffic 6 used to be
  // dropped before reaching A3 (exit to C) too.
  const auto f = gen::make_figure1();
  lai::AclLibrary lib;
  lib.emplace("pa", net::Acl::permit_all());
  lib.emplace("deny6", net::Acl::parse({"deny dst 6.0.0.0/8", "permit all"}));

  const auto program = lai::parse(R"(
scope A, B
allow A:*, B:*
modify A:1-in to pa, A:4-out to deny6
check
fix
)");
  const auto task = lai::resolve(program, f.topo, lib);
  EXPECT_EQ(task.scope.size(), 2u);

  Engine engine{f.topo};
  const auto report = engine.run(task, f.traffic);
  ASSERT_EQ(report.outcomes.size(), 2u);
  EXPECT_FALSE(report.outcomes[0].check->consistent);
  EXPECT_TRUE(report.outcomes[1].fix->success);

  smt::SmtContext smt;
  Checker checker{smt, f.topo, task.scope};
  EXPECT_TRUE(checker.check(report.final_update, f.traffic).consistent);
}

}  // namespace
}  // namespace jinjing::core
