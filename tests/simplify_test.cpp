#include "core/simplify.h"

#include <gtest/gtest.h>

#include <random>

#include "net/acl_algebra.h"

namespace jinjing::core {
namespace {

using net::Acl;

TEST(Simplify, PaperRunningExampleA1) {
  // §4.2: after fixing, A1 = "permit 1/8, permit 2/8, deny 1/8, deny 2/8,
  // deny 6/8, permit all" and simplification removes the first four rules.
  const auto fixed = Acl::parse({"permit dst 1.0.0.0/8", "permit dst 2.0.0.0/8",
                                 "deny dst 1.0.0.0/8", "deny dst 2.0.0.0/8", "deny dst 6.0.0.0/8",
                                 "permit all"});
  // (The explicit trailing "permit all" also folds into the implicit
  // default action of our ACL model.)
  const auto simplified = simplify(fixed);
  ASSERT_EQ(simplified.size(), 1u);
  EXPECT_EQ(simplified.rules()[0], net::parse_rule("deny dst 6.0.0.0/8"));
  EXPECT_TRUE(net::equivalent(fixed, simplified));
}

TEST(Simplify, KeepsNonRedundantRules) {
  const auto acl = Acl::parse({"permit dst 1.2.0.0/16", "deny dst 1.0.0.0/8", "permit all"});
  const auto simplified = simplify(acl);
  EXPECT_EQ(simplified.size(), 2u);  // permit-all is redundant, others are not
  EXPECT_TRUE(net::equivalent(acl, simplified));
}

TEST(Simplify, ShadowedRuleRemoved) {
  const auto acl = Acl::parse({"deny dst 1.0.0.0/8", "permit dst 1.2.0.0/16"});
  const auto simplified = simplify(acl);
  EXPECT_EQ(simplified.size(), 1u);
  EXPECT_TRUE(net::equivalent(acl, simplified));
}

TEST(Simplify, TrailingPermitAllMatchingDefaultRemoved) {
  const auto acl = Acl::parse({"deny dst 1.0.0.0/8", "permit all"});
  const auto simplified = simplify(acl);
  EXPECT_EQ(simplified.size(), 1u);
}

TEST(Simplify, EmptyAclUnchanged) {
  EXPECT_EQ(simplify(Acl::permit_all()).size(), 0u);
}

TEST(Simplify, Idempotent) {
  const auto acl = Acl::parse({"permit dst 1.0.0.0/8", "deny dst 1.0.0.0/8", "deny dst 2.0.0.0/8",
                               "permit all"});
  const auto once = simplify(acl);
  const auto twice = simplify(once);
  EXPECT_EQ(once, twice);
}

TEST(SimplifyOn, UniverseRestrictedRemoval) {
  // Within universe dst 1/8, the deny 2/8 rule is unobservable.
  net::HyperCube u;
  u.set_interval(net::Field::DstIp, net::parse_prefix("1.0.0.0/8").interval());
  const net::PacketSet universe{u};
  const auto acl = Acl::parse({"deny dst 2.0.0.0/8", "deny dst 1.0.0.0/8"});
  const auto simplified = simplify_on(acl, universe);
  ASSERT_EQ(simplified.size(), 1u);
  EXPECT_EQ(simplified.rules()[0], net::parse_rule("deny dst 1.0.0.0/8"));
}

// Property: simplification preserves the exact decision model and never
// grows the ACL, for random rule lists.
class SimplifyProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SimplifyProperty, EquivalentAndNoLarger) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> octet(0, 4);
  std::uniform_int_distribution<int> action(0, 1);
  std::uniform_int_distribution<int> n_rules(0, 10);
  std::uniform_int_distribution<int> len_choice(0, 2);

  std::vector<net::AclRule> rules;
  const int n = n_rules(rng);
  for (int i = 0; i < n; ++i) {
    net::Match m;
    const std::uint8_t lens[] = {8, 16, 0};
    m.dst = net::Prefix{net::Ipv4{static_cast<std::uint8_t>(octet(rng)), 0, 0, 0},
                        lens[len_choice(rng)]};
    rules.push_back({action(rng) ? net::Action::Permit : net::Action::Deny, m});
  }
  const Acl acl{rules, action(rng) ? net::Action::Permit : net::Action::Deny};
  const auto simplified = simplify(acl);
  EXPECT_LE(simplified.size(), acl.size());
  EXPECT_TRUE(net::equivalent(acl, simplified)) << to_string(acl) << "--\n"
                                                << to_string(simplified);
  // No rule in the result is itself redundant (fixpoint reached).
  EXPECT_EQ(simplify(simplified), simplified);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyProperty, ::testing::Range(1u, 31u));

}  // namespace
}  // namespace jinjing::core
