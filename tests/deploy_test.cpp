#include "core/deploy.h"

#include <gtest/gtest.h>

#include <random>

#include "gen/fixtures.h"
#include "net/acl_algebra.h"

namespace jinjing::core {
namespace {

using gen::Figure1;

TEST(Rollback, RestoresOriginalAcls) {
  const auto f = gen::make_figure1();
  const auto update = f.running_example_update();
  const auto rollback = rollback_update(f.topo, update);
  ASSERT_EQ(rollback.size(), update.size());
  for (const auto& [slot, acl] : rollback) {
    EXPECT_EQ(acl, f.topo.acl(slot));
  }
}

TEST(Rollback, EmptyUpdateEmptyRollback) {
  const auto f = gen::make_figure1();
  EXPECT_TRUE(rollback_update(f.topo, {}).empty());
}

TEST(StagedPlan, DropsUnchangedSlots) {
  const auto f = gen::make_figure1();
  topo::AclUpdate update;
  update.emplace(topo::AclSlot{f.A1, topo::Dir::In}, f.topo.acl(f.A1, topo::Dir::In));
  EXPECT_TRUE(staged_plan(f.topo, update, StagingMode::AvailabilityFirst).empty());
}

TEST(StagedPlan, PureLooseningSkipsTransitionalInAvailabilityMode) {
  // Clearing D2 only loosens it: under availability-first the final ACL is
  // itself the union bound, so one push suffices.
  const auto f = gen::make_figure1();
  topo::AclUpdate update;
  update.emplace(topo::AclSlot{f.D2, topo::Dir::In}, net::Acl::permit_all());
  const auto steps = staged_plan(f.topo, update, StagingMode::AvailabilityFirst);
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].phase, 0);

  // Security-first needs the transitional (intersection = old behaviour).
  const auto secure = staged_plan(f.topo, update, StagingMode::SecurityFirst);
  EXPECT_EQ(secure.size(), 2u);
}

TEST(StagedPlan, PhasesAreOrdered) {
  const auto f = gen::make_figure1();
  const auto update = f.running_example_update();
  for (const auto mode : {StagingMode::AvailabilityFirst, StagingMode::SecurityFirst}) {
    const auto steps = staged_plan(f.topo, update, mode);
    int last_phase = 0;
    for (const auto& step : steps) {
      EXPECT_GE(step.phase, last_phase);
      last_phase = step.phase;
    }
  }
}

// The staging guarantee, verified exactly: at every point of any in-phase
// interleaving, each slot's permitted set lies within the mode's bound.
class StagedPlanProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(StagedPlanProperty, TransientBehaviourIsBounded) {
  const auto f = gen::make_figure1();
  const auto update = f.running_example_update();
  const bool availability = GetParam() % 2 == 0;
  const auto mode = availability ? StagingMode::AvailabilityFirst : StagingMode::SecurityFirst;
  const auto steps = staged_plan(f.topo, update, mode);

  // Replay the pushes in a random order that respects phases: shuffle each
  // phase independently, then concatenate in phase order.
  std::mt19937 rng(GetParam());
  std::vector<std::size_t> order;
  for (int phase = 0; phase <= 1; ++phase) {
    std::vector<std::size_t> in_phase;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      if (steps[i].phase == phase) in_phase.push_back(i);
    }
    std::shuffle(in_phase.begin(), in_phase.end(), rng);
    order.insert(order.end(), in_phase.begin(), in_phase.end());
  }

  topo::AclUpdate state;  // what has been pushed so far
  const auto check_bounds = [&]() {
    const topo::ConfigView view{f.topo, &state};
    for (const auto& [slot, after] : update) {
      const auto current = net::permitted_set(view.acl(slot));
      const auto before_set = net::permitted_set(f.topo.acl(slot));
      const auto after_set = net::permitted_set(after);
      if (availability) {
        EXPECT_TRUE((before_set | after_set).contains(current));
        EXPECT_TRUE(current.contains(before_set & after_set));
      } else {
        // Security-first: never permit beyond either endpoint... i.e. the
        // current set is within the union, and everything both endpoints
        // deny stays denied.
        EXPECT_TRUE((before_set | after_set).contains(current));
      }
    }
  };

  check_bounds();
  for (const auto i : order) {
    state.insert_or_assign(steps[i].slot, steps[i].acl);
    check_bounds();
  }

  // Deployment complete: the final state equals the update.
  const topo::ConfigView final_view{f.topo, &state};
  for (const auto& [slot, after] : update) {
    EXPECT_TRUE(net::equivalent(final_view.acl(slot), after));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StagedPlanProperty, ::testing::Range(1u, 9u));

TEST(DescribeUpdate, ListsAddedAndRemovedRules) {
  const auto f = gen::make_figure1();
  const auto update = f.running_example_update();
  const auto text = describe_update(f.topo, update);
  EXPECT_NE(text.find("A:1-in:"), std::string::npos);
  EXPECT_NE(text.find("+ deny dst 1.0.0.0/8"), std::string::npos);
  EXPECT_NE(text.find("D:2-in:"), std::string::npos);
  EXPECT_NE(text.find("- deny dst 2.0.0.0/8"), std::string::npos);
}

TEST(DescribeUpdate, NoChanges) {
  const auto f = gen::make_figure1();
  EXPECT_EQ(describe_update(f.topo, {}), "(no changes)\n");
  topo::AclUpdate same;
  same.emplace(topo::AclSlot{f.A1, topo::Dir::In}, f.topo.acl(f.A1, topo::Dir::In));
  EXPECT_EQ(describe_update(f.topo, same), "(no changes)\n");
}

}  // namespace
}  // namespace jinjing::core
