// The execute stage: work-stealing executor unit tests, plus randomized-WAN
// properties that the plan/compile/execute pipeline preserves the sequential
// semantics — identical verdicts across thread counts, a deterministic
// stop_at_first witness, and fixer obligation-skipping that cannot change
// the repair.
#include "core/executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/checker.h"
#include "core/engine.h"
#include "core/fixer.h"
#include "core/plan.h"
#include "gen/scenario.h"
#include "net/acl_algebra.h"
#include "topo/paths.h"

namespace jinjing::core {
namespace {

// ---------------------------------------------------------------------------
// Executor unit tests.

class ExecutorThreads : public ::testing::TestWithParam<unsigned> {};

TEST_P(ExecutorThreads, RunsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  Executor executor{GetParam()};
  std::vector<std::atomic<int>> hits(kCount);

  const Executor::WorkerFactory factory = [&](std::size_t) -> Executor::Task {
    return [&](std::size_t i, const CancellationToken&) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
      return false;
    };
  };
  const auto stats = executor.run(kCount, factory);

  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  EXPECT_EQ(stats.executed, kCount);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.stop_index, kCount);
}

TEST_P(ExecutorThreads, EmptyRunIsANoOp) {
  Executor executor{GetParam()};
  const auto stats = executor.run(0, [](std::size_t) -> Executor::Task {
    ADD_FAILURE() << "factory must not be called for an empty run";
    return [](std::size_t, const CancellationToken&) { return false; };
  });
  EXPECT_EQ(stats.executed, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
}

// Early exit: the final stop_index is the *minimal* index whose task
// requested a stop, every index at or below it runs, and the accounting
// invariant executed + cancelled == count holds — regardless of scheduling.
TEST_P(ExecutorThreads, EarlyExitStopsAtMinimalIndex) {
  constexpr std::size_t kCount = 400;
  const std::set<std::size_t> stops = {137, 260, 399};
  Executor executor{GetParam()};

  for (int repeat = 0; repeat < 10; ++repeat) {
    std::vector<std::atomic<int>> hits(kCount);
    const Executor::WorkerFactory factory = [&](std::size_t) -> Executor::Task {
      return [&](std::size_t i, const CancellationToken&) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
        return stops.count(i) > 0;
      };
    };
    const auto stats = executor.run(kCount, factory);

    EXPECT_EQ(stats.stop_index, 137u) << "repeat " << repeat;
    EXPECT_EQ(stats.executed + stats.cancelled, kCount);
    for (std::size_t i = 0; i <= 137; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " below the bound must run";
    }
    for (std::size_t i = 0; i < kCount; ++i) EXPECT_LE(hits[i].load(), 1) << "index " << i;
  }
}

TEST_P(ExecutorThreads, ExceptionsPropagateToCaller) {
  Executor executor{GetParam()};
  const Executor::WorkerFactory factory = [&](std::size_t) -> Executor::Task {
    return [&](std::size_t i, const CancellationToken&) {
      if (i == 57) throw std::runtime_error{"obligation 57 failed"};
      return false;
    };
  };
  EXPECT_THROW((void)executor.run(200, factory), std::runtime_error);

  // The pool survives a throwing job and runs the next one normally.
  std::atomic<std::size_t> ran{0};
  const auto stats = executor.run(100, [&](std::size_t) -> Executor::Task {
    return [&](std::size_t, const CancellationToken&) {
      ran.fetch_add(1, std::memory_order_relaxed);
      return false;
    };
  });
  EXPECT_EQ(ran.load(), 100u);
  EXPECT_EQ(stats.executed, 100u);
}

INSTANTIATE_TEST_SUITE_P(Threads, ExecutorThreads, ::testing::Values(1u, 2u, 4u),
                         [](const auto& info) { return "T" + std::to_string(info.param); });

// A skewed workload (a few long tasks up front) must still complete every
// index: thieves split the loaded ranges rather than idling.
TEST(Executor, SkewedWorkloadCompletesUnderStealing) {
  constexpr std::size_t kCount = 64;
  Executor executor{4};
  std::vector<std::atomic<int>> hits(kCount);
  const Executor::WorkerFactory factory = [&](std::size_t) -> Executor::Task {
    return [&](std::size_t i, const CancellationToken&) {
      if (i < 2) std::this_thread::sleep_for(std::chrono::milliseconds{20});
      hits[i].fetch_add(1, std::memory_order_relaxed);
      return false;
    };
  };
  const auto stats = executor.run(kCount, factory);
  EXPECT_EQ(stats.executed, kCount);
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

// The factory is invoked once per participating worker, with distinct ids.
TEST(Executor, WorkerFactoryReceivesDistinctIds) {
  Executor executor{4};
  std::mutex mutex;
  std::set<std::size_t> ids;
  const auto stats = executor.run(256, [&](std::size_t worker_id) -> Executor::Task {
    {
      const std::lock_guard<std::mutex> lock{mutex};
      EXPECT_TRUE(ids.insert(worker_id).second) << "duplicate worker id " << worker_id;
    }
    return [](std::size_t, const CancellationToken&) {
      std::this_thread::sleep_for(std::chrono::microseconds{200});
      return false;
    };
  });
  EXPECT_EQ(stats.executed, 256u);
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 4u);
  for (const auto id : ids) EXPECT_LT(id, 4u);
}

// Cancellation tokens observe an early exit requested at a lower index.
TEST(Executor, TokenObservesEarlyExit) {
  Executor executor{1};  // sequential: index order is ascending, deterministic
  std::vector<bool> cancelled_after_stop;
  const auto stats = executor.run(10, [&](std::size_t) -> Executor::Task {
    return [&](std::size_t i, const CancellationToken& token) {
      if (i > 3) cancelled_after_stop.push_back(token.cancelled());
      return i == 3;
    };
  });
  EXPECT_EQ(stats.stop_index, 3u);
  // Sequentially, indices 4..9 are skipped before their body runs.
  EXPECT_EQ(stats.executed, 4u);
  EXPECT_EQ(stats.cancelled, 6u);
  EXPECT_TRUE(cancelled_after_stop.empty());
}

// ---------------------------------------------------------------------------
// Randomized-WAN pipeline properties.

gen::WanParams tiny_wan(unsigned seed) {
  gen::WanParams p;
  p.cores = 2;
  p.aggs = 2;
  p.cells = 2;
  p.gateways_per_cell = 2;
  p.prefixes_per_gateway = 2;
  p.rules_per_acl = 10;
  p.seed = seed;
  return p;
}

/// Exact per-path consistency verdict via the header-space engine.
bool oracle_consistent(const gen::Wan& wan, const topo::AclUpdate& update) {
  const topo::ConfigView before{wan.topo};
  const topo::ConfigView after{wan.topo, &update};
  for (const auto& path : topo::enumerate_paths(wan.topo, wan.scope)) {
    const auto carried = topo::forwarding_set(wan.topo, path) & wan.traffic;
    if (carried.is_empty()) continue;
    if (!(topo::path_permitted_set(before, path) & carried)
             .equals(topo::path_permitted_set(after, path) & carried)) {
      return false;
    }
  }
  return true;
}

CheckResult run_check(const gen::Wan& wan, const topo::AclUpdate& update, unsigned threads,
                      bool stop_at_first) {
  smt::SmtContext smt;
  CheckOptions options;
  options.threads = threads;
  options.stop_at_first = stop_at_first;
  Checker checker{smt, wan.topo, wan.scope, options};
  return checker.check(update, wan.traffic);
}

// Plan-executed parallel checking agrees with the sequential path on the
// verdict, the violated-obligation count and the exactness of every witness.
class PlanExecutionParity : public ::testing::TestWithParam<unsigned> {};

TEST_P(PlanExecutionParity, ParallelMatchesSequential) {
  const auto wan = gen::make_wan(tiny_wan(800 + GetParam()));
  const auto update = gen::perturb_rules(wan, 0.05, GetParam());

  const auto sequential = run_check(wan, update, 1, /*stop_at_first=*/false);
  const auto parallel = run_check(wan, update, 4, /*stop_at_first=*/false);

  EXPECT_EQ(sequential.consistent, oracle_consistent(wan, update));
  EXPECT_EQ(parallel.consistent, sequential.consistent);
  EXPECT_EQ(parallel.violations.size(), sequential.violations.size());
  EXPECT_EQ(parallel.fec_count, sequential.fec_count);
  EXPECT_EQ(parallel.obligation_count, sequential.obligation_count);
  // Without early exit, every obligation runs on both paths.
  EXPECT_EQ(sequential.obligations_executed, sequential.obligation_count);
  EXPECT_EQ(parallel.obligations_executed, parallel.obligation_count);

  // Every parallel witness is a genuine violation.
  smt::SmtContext smt;
  Checker checker{smt, wan.topo, wan.scope};
  const topo::ConfigView before{wan.topo};
  const topo::ConfigView after{wan.topo, &update};
  for (const auto& v : parallel.violations) {
    const auto& path = checker.paths()[v.path_index];
    EXPECT_EQ(topo::path_permits(before, path, v.witness), v.decision_before);
    EXPECT_EQ(topo::path_permits(after, path, v.witness), v.decision_after);
    EXPECT_NE(v.decision_before, v.decision_after);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanExecutionParity, ::testing::Range(1u, 6u));

// stop_at_first under parallel execution returns a *deterministic* first
// violation: repeated runs across thread counts yield the same witness on
// the same path (the executor's CAS-min bound plus the checker's
// fresh-session re-derivation).
class StopAtFirstDeterminism : public ::testing::TestWithParam<unsigned> {};

TEST_P(StopAtFirstDeterminism, WitnessIsStableAcrossRunsAndThreadCounts) {
  const auto wan = gen::make_wan(tiny_wan(900 + GetParam()));
  // Heavier perturbation: several violated obligations make the race real.
  const auto update = gen::perturb_rules(wan, 0.10, GetParam());
  if (oracle_consistent(wan, update)) GTEST_SKIP() << "perturbation happens to be consistent";

  std::optional<Violation> first;
  for (const unsigned threads : {2u, 4u, 2u, 4u}) {
    const auto result = run_check(wan, update, threads, /*stop_at_first=*/true);
    ASSERT_FALSE(result.consistent);
    ASSERT_EQ(result.violations.size(), 1u);
    const auto& v = result.violations.front();
    if (!first) {
      first = v;
      continue;
    }
    EXPECT_EQ(v.witness, first->witness) << "threads " << threads;
    EXPECT_EQ(v.path_index, first->path_index) << "threads " << threads;
    EXPECT_EQ(v.decision_before, first->decision_before);
    EXPECT_EQ(v.decision_after, first->decision_after);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StopAtFirstDeterminism, ::testing::Range(1u, 6u));

// The fixer's touched-slot obligation skipping is invisible in the result:
// the repaired update is identical (not merely equivalent) to the one the
// full seed-style sweep produces, and both satisfy the exact oracle.
class FixerReplanParity : public ::testing::TestWithParam<unsigned> {};

TEST_P(FixerReplanParity, SkippingUntouchedObligationsPreservesTheRepair) {
  const auto wan = gen::make_wan(tiny_wan(1000 + GetParam()));
  const auto update = gen::perturb_rules(wan, 0.06, GetParam());

  smt::SmtContext smt_skip;
  FixOptions with_skip;
  with_skip.replan_touched_only = true;
  Fixer skipping{smt_skip, wan.topo, wan.scope, with_skip};
  const auto a = skipping.fix(update, wan.traffic, wan.topo.bound_slots());

  smt::SmtContext smt_full;
  FixOptions no_skip;
  no_skip.replan_touched_only = false;
  Fixer sweeping{smt_full, wan.topo, wan.scope, no_skip};
  const auto b = sweeping.fix(update, wan.traffic, wan.topo.bound_slots());

  ASSERT_EQ(a.success, b.success);
  ASSERT_TRUE(a.success);
  EXPECT_TRUE(a.fixed_update == b.fixed_update);
  EXPECT_TRUE(oracle_consistent(wan, a.fixed_update));
  EXPECT_EQ(a.obligations, b.obligations);
  EXPECT_GE(a.obligations_skipped, b.obligations_skipped);
  EXPECT_EQ(b.obligations_skipped, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixerReplanParity, ::testing::Range(1u, 5u));

// ---------------------------------------------------------------------------
// Engine session reuse and batch execution.

// check; fix; check through ONE engine reuses the cached plan and check
// session across commands — and still repairs correctly.
TEST(EngineSession, CheckFixCheckReusesPlanAndStaysCorrect) {
  const auto wan = gen::make_wan(tiny_wan(42));
  const auto update = gen::perturb_rules(wan, 0.08, 7);
  if (oracle_consistent(wan, update)) GTEST_SKIP() << "perturbation happens to be consistent";

  Engine engine{wan.topo};
  lai::UpdateTask task;
  task.scope = wan.scope;
  task.allowed = wan.topo.bound_slots();
  task.modify = update;
  task.commands = {lai::Command::Check, lai::Command::Fix, lai::Command::Check};
  const auto report = engine.run(task, wan.traffic);

  ASSERT_EQ(report.outcomes.size(), 3u);
  EXPECT_FALSE(report.outcomes[0].check->consistent);
  EXPECT_TRUE(report.outcomes[1].fix->success);
  EXPECT_TRUE(report.outcomes[2].check->consistent);
  EXPECT_TRUE(report.success());
  EXPECT_TRUE(oracle_consistent(wan, report.final_update));

  // The trailing check planned nothing: the obligation plan was built once
  // by the first command and served from the checker's cache afterwards.
  EXPECT_GT(report.outcomes[0].check->plan_seconds, 0.0);
  EXPECT_EQ(report.outcomes[2].check->plan_seconds, 0.0);

  // A second task on the same engine (same scope) also replans nothing.
  lai::UpdateTask again;
  again.scope = wan.scope;
  again.modify = gen::perturb_rules(wan, 0.04, 11);
  again.commands = {lai::Command::Check};
  const auto second = engine.run(again, wan.traffic);
  ASSERT_EQ(second.outcomes.size(), 1u);
  EXPECT_EQ(second.outcomes[0].check->plan_seconds, 0.0);
  EXPECT_EQ(second.outcomes[0].check->consistent, oracle_consistent(wan, again.modify));
}

// run_batch over the shared executor returns, task for task, the same
// verdicts and final updates as a serial loop over run().
TEST(EngineBatch, MatchesSerialExecution) {
  const auto wan = gen::make_wan(tiny_wan(55));

  std::vector<lai::UpdateTask> tasks;
  for (unsigned seed = 1; seed <= 6; ++seed) {
    lai::UpdateTask task;
    task.scope = wan.scope;
    task.allowed = wan.topo.bound_slots();
    task.modify = gen::perturb_rules(wan, 0.05, seed);
    task.commands = {lai::Command::Check, lai::Command::Fix};
    tasks.push_back(std::move(task));
  }

  EngineOptions serial_options;
  serial_options.check.threads = 1;
  Engine serial{wan.topo, serial_options};
  std::vector<EngineReport> expected;
  for (const auto& task : tasks) expected.push_back(serial.run(task, wan.traffic));

  EngineOptions batch_options;
  batch_options.check.threads = 4;
  Engine batch{wan.topo, batch_options};
  const auto actual = batch.run_batch(tasks, wan.traffic);

  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    ASSERT_EQ(actual[i].outcomes.size(), expected[i].outcomes.size()) << "task " << i;
    EXPECT_EQ(actual[i].outcomes[0].check->consistent, expected[i].outcomes[0].check->consistent)
        << "task " << i;
    EXPECT_EQ(actual[i].outcomes[1].fix->success, expected[i].outcomes[1].fix->success)
        << "task " << i;
    EXPECT_TRUE(actual[i].final_update == expected[i].final_update) << "task " << i;
    EXPECT_TRUE(oracle_consistent(wan, actual[i].final_update)) << "task " << i;
  }
}

// The plan IR itself: obligations cover every (entry, class) combination in
// classifier order, and `touches` is exact about slot membership.
TEST(VerifyPlanIr, ObligationsAreOrderedAndSlotAware) {
  const auto wan = gen::make_wan(tiny_wan(77));
  smt::SmtContext smt;
  Checker checker{smt, wan.topo, wan.scope};
  const auto& plan = checker.plan(wan.traffic);

  ASSERT_GT(plan.size(), 0u);
  EXPECT_EQ(plan.stats().fec_count, plan.size());
  EXPECT_EQ(plan.stats().path_count, checker.paths().size());

  for (std::size_t i = 0; i < plan.size(); ++i) {
    const auto& o = plan.obligations()[i];
    EXPECT_EQ(o.index, i);
    ASSERT_NE(o.fec, nullptr);
    EXPECT_EQ(o.mode, Lowering::Differential);
    // Feasible paths are ascending and genuinely feasible.
    for (std::size_t k = 1; k < o.paths.size(); ++k) EXPECT_LT(o.paths[k - 1], o.paths[k]);
    // Slots are exactly the union over the obligation's paths.
    for (const auto& slot : o.slots) {
      topo::AclUpdate touching;
      touching.emplace(slot, net::Acl::permit_all());
      EXPECT_TRUE(touches(o, touching));
    }
    topo::AclUpdate empty_update;
    EXPECT_FALSE(touches(o, empty_update));
  }

  // An update rewriting every bound slot touches exactly the obligations
  // with a bound slot on some feasible path (hops may carry unbound slots,
  // which no update can rewrite).
  topo::AclUpdate all;
  for (const auto slot : wan.topo.bound_slots()) all.emplace(slot, net::Acl::permit_all());
  EXPECT_EQ(plan.live_count(all, /*has_controls=*/false),
            static_cast<std::size_t>(
                std::count_if(plan.obligations().begin(), plan.obligations().end(),
                              [&](const Obligation& o) {
                                return std::any_of(o.slots.begin(), o.slots.end(), [&](auto slot) {
                                  return all.find(slot) != all.end();
                                });
                              })));
  // Control intents force every obligation live.
  EXPECT_EQ(plan.live_count(all, /*has_controls=*/true), plan.size());
}

}  // namespace
}  // namespace jinjing::core
