// The replication subsystem end to end: a writer streaming applied updates
// over loopback TCP, read-only verifier replicas replaying the stream into
// their own state stores, the lease that pins the replica's applied version
// on the writer, and the replica-aware client routing.
//
// The invariants under test are the ones the design stands on: a replica's
// answers are bit-for-bit the writer's answers at the same version (safety),
// lag drains back to zero after apply bursts (liveness), any divergence —
// including a writer restart — forces a full rebuild rather than a silent
// fork, and mutating calls bounce to the writer with a 421.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gen/fixtures.h"
#include "replica/replica.h"
#include "svc/client.h"
#include "svc/json.h"
#include "svc/routed_client.h"
#include "svc/server.h"

namespace jinjing {
namespace {

using svc::Client;
using svc::ClientOptions;
using svc::Json;
using svc::RpcError;

constexpr const char* kToken = "replica-test-token";

constexpr const char* kCheckOnly = "scope A:*, B:*, C:*, D:*\ncheck\n";
constexpr const char* kBreakingModify =
    "scope A:*, B:*, C:*, D:*\nallow A:*\nmodify A:1-in to permit_all\ncheck\n";
constexpr const char* kCheckFix =
    "scope A:*, B:*, C:*, D:*\n"
    "allow A:*, B:*\n"
    "modify A:1-in to A1_new, A:3-out to A3_new, C:1-in to permit_all, "
    "D:2-in to permit_all\ncheck\nfix\n";
constexpr const char* kA1New =
    "deny dst 1.0.0.0/8\ndeny dst 2.0.0.0/8\ndeny dst 6.0.0.0/8\npermit all\n";
constexpr const char* kA3New = "deny dst 7.0.0.0/8\npermit all\n";

config::NetworkFile figure1_network() {
  auto fig = gen::make_figure1();
  config::NetworkFile network;
  network.topo = std::move(fig.topo);
  network.traffic = std::move(fig.traffic);
  return network;
}

svc::ServerOptions writer_options() {
  svc::ServerOptions options;
  options.listen_address = "127.0.0.1:0";
  options.auth_token = kToken;
  options.workers = 2;
  options.keep_versions = 8;
  return options;
}

replica::ReplicaOptions replica_options(const std::string& writer_endpoint) {
  replica::ReplicaOptions options;
  options.writer = writer_endpoint;
  options.token = kToken;
  // Tight backoff: the restart test wants the replica to notice a dead
  // writer and redial within milliseconds, not the production 2s cap.
  options.backoff_ms = 10;
  options.backoff_cap_ms = 100;
  options.serve.listen_address = "127.0.0.1:0";
  options.serve.workers = 2;
  return options;
}

ClientOptions client_options() {
  ClientOptions options;
  options.token = kToken;
  return options;
}

/// Polls `pred` until it holds or the (deliberately generous) deadline
/// passes — every wait in this file is on work that completes in
/// milliseconds unless something is actually broken.
template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds timeout = std::chrono::seconds(60)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return true;
}

Json submit_and_wait(Client& client, Json::Object params) {
  const Json submitted = client.call("submit", Json{std::move(params)});
  Json::Object wait;
  wait.emplace("job", submitted.at("job").as_u64());
  wait.emplace("timeout_ms", std::uint64_t{300000});
  return client.call("result", Json{std::move(wait)});
}

Json::Object check_params(const char* program, std::uint64_t snapshot = 0) {
  Json::Object params;
  params.emplace("program", program);
  if (snapshot != 0) params.emplace("snapshot", snapshot);
  return params;
}

Json::Object fix_params() {
  Json::Object params;
  params.emplace("program", kCheckFix);
  Json::Object acls;
  acls.emplace("A1_new", kA1New);
  acls.emplace("A3_new", kA3New);
  params.emplace("acls", Json{std::move(acls)});
  return params;
}

TEST(ReplicaTest, CatchesUpFromTheLogThenFollowsLiveApplies) {
  svc::Server writer{figure1_network(), writer_options()};
  writer.start();
  // Two versions land before the replica exists: it must catch up from the
  // replication log, not just tail new records.
  (void)writer.store().apply_update({});
  (void)writer.store().apply_update({});
  ASSERT_EQ(writer.repl_head(), 3u);

  replica::Replica rep{figure1_network(), replica_options(writer.listen_endpoint())};
  rep.start();
  ASSERT_TRUE(wait_until([&] { return rep.applied_version() == 3; }));
  EXPECT_EQ(rep.server().store().head_version(), 3u);
  EXPECT_TRUE(wait_until([&] { return writer.subscriber_count() == 1; }));
  // The follower's lease is visible on the writer.
  EXPECT_TRUE(wait_until([&] { return writer.store().lease_count() == 1; }));

  // A live apply burst: lag must drain back to zero without a reset.
  for (int i = 0; i < 3; ++i) (void)writer.store().apply_update({});
  ASSERT_TRUE(wait_until([&] { return rep.applied_version() == 6; }));
  EXPECT_EQ(rep.lag(), 0u);
  EXPECT_EQ(rep.resets(), 0u);
  EXPECT_TRUE(rep.connected());
  EXPECT_EQ(rep.server().store().head_version(), 6u);

  // A graceful replica shutdown releases its writer-side lease.
  rep.request_shutdown();
  rep.wait();
  EXPECT_TRUE(wait_until([&] { return writer.store().lease_count() == 0; }));

  writer.request_shutdown();
  writer.wait();
}

TEST(ReplicaTest, ChecksMatchAFreshEngineOracleAtThePinnedVersion) {
  // The writer is configured as the fresh-engine oracle: no delta cache, no
  // coalescing, one worker — every job it answers runs a from-scratch
  // engine against the pinned snapshot. The replica keeps the full serving
  // stack (incremental planner, batching) and must agree bit for bit.
  svc::ServerOptions oracle_options = writer_options();
  oracle_options.max_delta_chain = 0;
  oracle_options.coalesce = 1;
  oracle_options.workers = 1;
  svc::Server writer{figure1_network(), oracle_options};
  writer.start();
  Client writer_client{writer.listen_endpoint(), client_options()};

  // Repair the network through the writer so both sides sit at version 2
  // with a real (non-empty) replicated update behind them.
  const Json fixed = submit_and_wait(writer_client, fix_params());
  ASSERT_TRUE(fixed.at("status").at("outcome").at("success").as_bool()) << fixed.dump();
  Json::Object apply;
  apply.emplace("job", fixed.at("status").at("job").as_u64());
  ASSERT_EQ(writer_client.call("apply", Json{std::move(apply)}).at("version").as_u64(), 2u);

  replica::Replica rep{figure1_network(), replica_options(writer.listen_endpoint())};
  rep.start();
  ASSERT_TRUE(wait_until([&] { return rep.applied_version() == 2; }));
  Client replica_client{rep.server().listen_endpoint(), client_options()};

  for (const char* program : {kCheckOnly, kBreakingModify}) {
    const Json from_replica = submit_and_wait(replica_client, check_params(program, 2));
    const Json from_oracle = submit_and_wait(writer_client, check_params(program, 2));
    const Json& replica_status = from_replica.at("status");
    const Json& oracle_status = from_oracle.at("status");
    ASSERT_EQ(replica_status.at("state").as_string(), "done") << replica_status.dump();
    EXPECT_EQ(replica_status.at("snapshot").as_u64(), 2u);
    // The whole client-visible outcome — verdict, plan text, per-command
    // consistent bits — must be byte-identical to the oracle's.
    EXPECT_EQ(replica_status.at("outcome").dump(), oracle_status.at("outcome").dump())
        << program;
  }

  rep.request_shutdown();
  rep.wait();
  writer.request_shutdown();
  writer.wait();
}

TEST(ReplicaTest, WriterRestartForcesAResetAndAFreshFollow) {
  svc::ServerOptions options = writer_options();
  auto writer = std::make_unique<svc::Server>(figure1_network(), options);
  writer->start();
  const std::string endpoint = writer->listen_endpoint();
  (void)writer->store().apply_update({});

  replica::Replica rep{figure1_network(), replica_options(endpoint)};
  rep.start();
  ASSERT_TRUE(wait_until([&] { return rep.applied_version() == 2; }));

  // The writer restarts from the pristine network on the same port: its
  // head is back at 1 while the replica sits at 2. The subscribe comes
  // back 409 ("ahead of the writer") and the replica must rebuild from
  // scratch rather than trust any of its replayed state.
  writer->request_shutdown();
  writer->wait();
  writer.reset();
  options.listen_address = endpoint;
  writer = std::make_unique<svc::Server>(figure1_network(), options);
  writer->start();

  ASSERT_TRUE(wait_until([&] { return rep.resets() >= 1 && rep.connected(); }));
  ASSERT_TRUE(wait_until([&] { return rep.applied_version() == 1; }));

  // The rebuilt replica follows the new writer like a fresh one would —
  // and its local server answers on the same endpoint as before the reset.
  (void)writer->store().apply_update({});
  ASSERT_TRUE(wait_until([&] { return rep.applied_version() == 2; }));
  EXPECT_EQ(rep.lag(), 0u);
  Client replica_client{rep.server().listen_endpoint(), client_options()};
  const Json result = submit_and_wait(replica_client, check_params(kCheckOnly));
  EXPECT_EQ(result.at("status").at("snapshot").as_u64(), 2u);
  EXPECT_TRUE(result.at("status").at("outcome").at("success").as_bool());

  rep.request_shutdown();
  rep.wait();
  writer->request_shutdown();
  writer->wait();
}

TEST(ReplicaTest, MutatingCallsBounceWithARedirectNamingTheWriter) {
  svc::Server writer{figure1_network(), writer_options()};
  writer.start();
  replica::Replica rep{figure1_network(), replica_options(writer.listen_endpoint())};
  rep.start();
  ASSERT_TRUE(wait_until([&] { return rep.connected(); }));
  Client replica_client{rep.server().listen_endpoint(), client_options()};

  try {
    (void)replica_client.call("submit", Json{fix_params()});
    FAIL() << "fix submission on a replica must be rejected";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), 421);
    EXPECT_NE(std::string{e.what()}.find(writer.listen_endpoint()), std::string::npos)
        << e.what();
  }
  try {
    Json::Object apply;
    apply.emplace("job", 1);
    (void)replica_client.call("apply", Json{std::move(apply)});
    FAIL() << "apply on a replica must be rejected";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), 421);
  }
  // Pure checks still serve locally on the very same connection.
  const Json checked = submit_and_wait(replica_client, check_params(kCheckOnly));
  EXPECT_TRUE(checked.at("status").at("outcome").at("success").as_bool());

  rep.request_shutdown();
  rep.wait();
  writer.request_shutdown();
  writer.wait();
}

TEST(ReplicaTest, RoutedClientSplitsReadsFromWritesAndReadsItsOwnWrites) {
  svc::Server writer{figure1_network(), writer_options()};
  writer.start();
  replica::Replica rep{figure1_network(), replica_options(writer.listen_endpoint())};
  rep.start();
  ASSERT_TRUE(wait_until([&] { return rep.connected(); }));

  svc::RouteOptions route;
  route.writer = writer.listen_endpoint();
  route.replicas.push_back(rep.server().listen_endpoint());
  route.client = client_options();
  svc::RoutedClient routed{route};

  // A pure check lands on the replica, not the writer.
  const std::size_t replica_jobs_before = rep.server().scheduler().tracked_count();
  const std::size_t writer_jobs_before = writer.scheduler().tracked_count();
  {
    const Json submitted = routed.call("submit", Json{check_params(kCheckOnly)});
    Json::Object wait;
    wait.emplace("job", submitted.at("job").as_u64());
    const Json result = routed.call("result", Json{std::move(wait)});
    EXPECT_TRUE(result.at("status").at("outcome").at("success").as_bool());
  }
  EXPECT_EQ(rep.server().scheduler().tracked_count(), replica_jobs_before + 1);
  EXPECT_EQ(writer.scheduler().tracked_count(), writer_jobs_before);

  // The fix goes to the writer (it owns the job, so apply-by-id works).
  const Json fixed_submit = routed.call("submit", Json{fix_params()});
  Json::Object wait;
  wait.emplace("job", fixed_submit.at("job").as_u64());
  const Json fixed = routed.call("result", Json{std::move(wait)});
  ASSERT_TRUE(fixed.at("status").at("outcome").at("success").as_bool()) << fixed.dump();
  Json::Object apply;
  apply.emplace("job", fixed.at("status").at("job").as_u64());
  EXPECT_EQ(routed.call("apply", Json{std::move(apply)}).at("version").as_u64(), 2u);
  EXPECT_EQ(routed.last_applied(), 2u);

  // Read-your-writes: the next check pins the version this client just
  // applied; the router waits out replica catch-up instead of serving a
  // stale answer.
  const Json reread = routed.call("submit", Json{check_params(kCheckOnly)});
  Json::Object rewait;
  rewait.emplace("job", reread.at("job").as_u64());
  const Json result = routed.call("result", Json{std::move(rewait)});
  EXPECT_EQ(result.at("status").at("snapshot").as_u64(), 2u);
  EXPECT_TRUE(result.at("status").at("outcome").at("success").as_bool());

  rep.request_shutdown();
  rep.wait();
  writer.request_shutdown();
  writer.wait();
}

TEST(ReplicaTest, ShutdownRpcOnTheLocalServerStopsTheWholeReplica) {
  svc::Server writer{figure1_network(), writer_options()};
  writer.start();
  replica::Replica rep{figure1_network(), replica_options(writer.listen_endpoint())};
  rep.start();
  ASSERT_TRUE(wait_until([&] { return rep.connected(); }));

  // An operator draining the replica's own server must take the follower
  // down with it — wait() returns without anyone calling request_shutdown.
  {
    Client replica_client{rep.server().listen_endpoint(), client_options()};
    EXPECT_TRUE(replica_client.call("shutdown").at("draining").as_bool());
  }
  rep.wait();
  EXPECT_TRUE(wait_until([&] { return writer.subscriber_count() == 0; }));

  writer.request_shutdown();
  writer.wait();
}

}  // namespace
}  // namespace jinjing
