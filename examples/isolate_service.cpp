// §7 Scenario 1: isolating a service area.
//
// A new service S is assigned 1.2.0.0/16. Operators must isolate traffic
// between S and gateway R3 (which fronts a private subnet), in both
// directions, by generating ACLs on the ingress interfaces of R1, R2 and
// R3 — without touching anything else. Adding a plain deny on R3 by hand
// risks side effects on the un-recycled address space behind R3; Jinjing
// generates a plan that provably has none.
#include <iostream>

#include "core/engine.h"
#include "lai/printer.h"
#include "net/acl_algebra.h"
#include "topo/paths.h"

namespace {

using namespace jinjing;

/// The Scenario 1 triangle: service side -> R1/R2 -> R3 -> private subnet,
/// and the reverse direction R3 -> R1/R2 -> service side.
struct Scenario1 {
  topo::Topology topo;
  topo::Scope scope;
  net::PacketSet traffic;
};

Scenario1 build() {
  Scenario1 s;
  auto& t = s.topo;
  const auto r1 = t.add_device("R1");
  const auto r2 = t.add_device("R2");
  const auto r3 = t.add_device("R3");

  // Forward direction: service-facing entries on R1/R2, exit at R3.
  const auto r1_svc = t.add_interface(r1, "svc");
  const auto r1_dn = t.add_interface(r1, "dn");
  const auto r2_svc = t.add_interface(r2, "svc");
  const auto r2_dn = t.add_interface(r2, "dn");
  const auto r3_u1 = t.add_interface(r3, "u1");
  const auto r3_u2 = t.add_interface(r3, "u2");
  const auto r3_sub = t.add_interface(r3, "sub");
  // Reverse direction: subnet entry on R3, exits toward the service.
  const auto r3_in = t.add_interface(r3, "in");
  const auto r3_b1 = t.add_interface(r3, "b1");
  const auto r3_b2 = t.add_interface(r3, "b2");
  const auto r1_up = t.add_interface(r1, "up");
  const auto r1_out = t.add_interface(r1, "out");
  const auto r2_up = t.add_interface(r2, "up");
  const auto r2_out = t.add_interface(r2, "out");

  for (const auto i : {r1_svc, r2_svc, r3_sub, r3_in, r1_out, r2_out}) t.mark_external(i);

  // The private subnet behind R3 is 9.0.0.0/8; the service is 1.2.0.0/16.
  net::HyperCube to_subnet;
  to_subnet.set_interval(net::Field::DstIp, net::parse_prefix("9.0.0.0/8").interval());
  const net::PacketSet down{to_subnet};
  net::HyperCube to_service;
  to_service.set_interval(net::Field::DstIp, net::parse_prefix("1.0.0.0/8").interval());
  const net::PacketSet up{to_service};

  t.add_edge(r1_svc, r1_dn, down);
  t.add_edge(r2_svc, r2_dn, down);
  t.add_edge(r1_dn, r3_u1, down);
  t.add_edge(r2_dn, r3_u2, down);
  t.add_edge(r3_u1, r3_sub, down);
  t.add_edge(r3_u2, r3_sub, down);

  t.add_edge(r3_in, r3_b1, up);
  t.add_edge(r3_in, r3_b2, up);
  t.add_edge(r3_b1, r1_up, up);
  t.add_edge(r3_b2, r2_up, up);
  t.add_edge(r1_up, r1_out, up);
  t.add_edge(r2_up, r2_out, up);

  s.scope = topo::Scope::whole_network(t);
  s.traffic = down | up;
  return s;
}

constexpr const char* kProgram = R"(scope R1:*, R2:*, R3:*
allow R1:*-in, R2:*-in, R3:*-in
control R1:svc, R2:svc -> R3:sub isolate from 1.2.0.0/16
control R3:in -> R1:out, R2:out isolate to 1.2.0.0/16
generate
)";

}  // namespace

int main() {
  auto s = build();

  std::cout << "=== Scenario 1: isolating service 1.2.0.0/16 from gateway R3 ===\n\n";
  std::cout << "LAI program:\n" << kProgram << "\n";

  core::Engine engine{s.topo};
  const auto report = engine.run_program(kProgram, {}, s.traffic);
  const auto& gen_result = *report.outcomes[0].generate;

  std::cout << "generate: " << (gen_result.success ? "success" : "FAILED") << " ("
            << gen_result.aec_count << " AECs, " << gen_result.smt_queries << " SMT queries)\n\n";
  std::cout << "Generated plan:\n";
  for (const auto& [slot, acl] : report.final_update) {
    if (acl.empty()) continue;
    std::cout << "  " << s.topo.qualified_name(slot.iface) << "-" << topo::to_string(slot.dir)
              << ":\n";
    for (const auto& rule : acl.rules()) std::cout << "    " << net::to_string(rule) << "\n";
  }

  // Verify the isolation concretely.
  const topo::ConfigView after{s.topo, &report.final_update};
  net::Packet service_to_subnet;
  service_to_subnet.sip = net::parse_ipv4("1.2.3.4");
  service_to_subnet.dip = net::parse_ipv4("9.0.0.1");
  net::Packet other_to_subnet;
  other_to_subnet.sip = net::parse_ipv4("8.8.8.8");
  other_to_subnet.dip = net::parse_ipv4("9.0.0.1");
  net::Packet subnet_to_service;
  subnet_to_service.sip = net::parse_ipv4("9.0.0.1");
  subnet_to_service.dip = net::parse_ipv4("1.2.3.4");
  net::Packet subnet_to_other;
  subnet_to_other.sip = net::parse_ipv4("9.0.0.1");
  subnet_to_other.dip = net::parse_ipv4("1.99.0.1");

  bool ok = true;
  for (const auto& path : topo::enumerate_paths(s.topo, s.scope)) {
    const auto fwd = topo::forwarding_set(s.topo, path);
    const auto probe = [&](const net::Packet& p, bool want, const char* what) {
      if (!fwd.contains(p)) return;
      const bool got = topo::path_permits(after, path, p);
      std::cout << "  " << what << " on " << topo::to_string(s.topo, path) << ": "
                << (got ? "permitted" : "denied") << (got == want ? "" : "  <-- WRONG") << "\n";
      ok = ok && got == want;
    };
    probe(service_to_subnet, false, "service->subnet ");
    probe(other_to_subnet, true, "other->subnet   ");
    probe(subnet_to_service, false, "subnet->service ");
    probe(subnet_to_other, true, "subnet->other   ");
  }
  std::cout << (ok ? "\nisolation verified, no side effects\n" : "\nPLAN IS WRONG\n");
  return ok && report.success() ? 0 : 1;
}
