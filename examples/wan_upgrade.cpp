// §7 Scenarios 2 and 3 at WAN scale, on the synthetic layered WAN.
//
// Scenario 2 — hidden complexities in moving ACLs from ingress to egress:
//   relocating every gateway's ingress ACL to its host-side egress silently
//   blocks intra-cell peer traffic that only crosses the egress interfaces.
//   check flags it within the run; fix produces the offset plan.
//
// Scenario 3 — migrating ACLs out of a layer of routers: all aggregation-
//   layer ACLs move down to the gateways so the middle layer can be
//   reassigned (the paper's PE-router conversion), via generate.
#include <chrono>
#include <iostream>

#include "core/checker.h"
#include "core/fixer.h"
#include "core/generator.h"
#include "gen/scenario.h"
#include "topo/paths.h"

namespace {

using namespace jinjing;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main() {
  const auto wan = gen::make_wan(gen::medium_wan());
  std::cout << "=== WAN upgrade on the synthetic medium WAN ===\n";
  std::cout << "devices: " << wan.topo.device_count() << " (" << wan.cores.size() << " core, "
            << wan.aggs.size() << " aggregation, " << wan.gateways.size() << " gateway), "
            << gen::total_rules(wan) << " ACL rules\n\n";

  // ---- Scenario 2: ingress -> egress relocation. -------------------------
  std::cout << "--- Scenario 2: relocate gateway ACLs from ingress to egress ---\n";
  const auto relocation = gen::ingress_to_egress_update(wan);

  auto t0 = std::chrono::steady_clock::now();
  smt::SmtContext smt_check;
  core::CheckOptions check_options;
  check_options.stop_at_first = false;
  core::Checker checker{smt_check, wan.topo, wan.scope, check_options};
  const auto check = checker.check(relocation, wan.traffic);
  std::cout << "check: " << (check.consistent ? "consistent" : "INCONSISTENT") << ", "
            << check.violations.size() << " violated classes of " << check.fec_count
            << ", in " << seconds_since(t0) << "s\n";
  if (!check.violations.empty()) {
    const auto& v = check.violations.front();
    std::cout << "  e.g. " << net::to_string(v.witness) << " (intra-cell peer traffic)\n";
  }

  t0 = std::chrono::steady_clock::now();
  smt::SmtContext smt_fix;
  core::Fixer fixer{smt_fix, wan.topo, wan.scope};
  const auto fix = fixer.fix(relocation, wan.traffic, gen::gateway_layer_allow(wan));
  std::size_t fix_rules = 0;
  for (const auto& a : fix.actions) fix_rules += a.rules.size();
  std::cout << "fix: " << (fix.success ? "repaired" : "FAILED") << ", "
            << fix.neighborhoods.size() << " neighborhoods, " << fix_rules
            << " fixing rules on " << fix.actions.size() << " interfaces, in "
            << seconds_since(t0) << "s\n";

  smt::SmtContext smt_recheck;
  core::Checker rechecker{smt_recheck, wan.topo, wan.scope};
  const bool fixed_ok = rechecker.check(fix.fixed_update, wan.traffic).consistent;
  std::cout << "re-check: " << (fixed_ok ? "consistent" : "INCONSISTENT") << "\n\n";

  // ---- Scenario 3: migrate the middle layer's ACLs. ----------------------
  std::cout << "--- Scenario 3: migrate all aggregation-layer ACLs to the gateways ---\n";
  t0 = std::chrono::steady_clock::now();
  smt::SmtContext smt_gen;
  core::GenerateOptions gen_options;
  gen_options.universe = wan.traffic;
  core::Generator generator{smt_gen, wan.topo, wan.scope, gen_options};
  const auto migration = generator.generate(gen::migration_spec(wan));
  std::cout << "generate: " << (migration.success ? "success" : "FAILED") << " in "
            << seconds_since(t0) << "s\n";
  std::cout << "  phases: derive " << migration.derive_seconds << "s (" << migration.aec_count
            << " AECs), solve " << migration.solve_seconds << "s (" << migration.dec_count
            << " DECs), synthesize " << migration.synth_seconds << "s ("
            << migration.synthesis.emitted_rules << " rules)\n";

  // Validate the migration exactly.
  const topo::ConfigView before{wan.topo};
  const topo::ConfigView after{wan.topo, &migration.update};
  bool preserved = true;
  for (const auto& path : topo::enumerate_paths(wan.topo, wan.scope)) {
    const auto carried = topo::forwarding_set(wan.topo, path) & wan.traffic;
    if (carried.is_empty()) continue;
    preserved = preserved && (topo::path_permitted_set(before, path) & carried)
                                 .equals(topo::path_permitted_set(after, path) & carried);
  }
  std::cout << "  reachability preserved on every routed path: " << (preserved ? "yes" : "NO")
            << "\n";

  const bool ok = fixed_ok && fix.success && migration.success && preserved;
  std::cout << "\n" << (ok ? "WAN upgrade plans are safe to deploy" : "FAILURE") << "\n";
  return ok ? 0 : 1;
}
