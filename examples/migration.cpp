// ACL migration (§5): move the ACLs off interfaces A1 and D2 of the
// Figure 1 network and regenerate equivalent ACLs at C1, C2 and D1 —
// reproducing Table 3 (ACL equivalence classes) and Table 4 (sequence
// encoding + synthesized ACLs) along the way.
#include <iostream>

#include "core/aec.h"
#include "core/generator.h"
#include "gen/fixtures.h"
#include "net/acl_algebra.h"
#include "topo/paths.h"

namespace {

using namespace jinjing;

/// Human name of a traffic class within the Figure 1 universe.
std::string class_name(const net::PacketSet& cls) {
  std::string name;
  for (int k = 1; k <= 7; ++k) {
    if (cls.intersects(gen::Figure1::traffic_class(k))) {
      if (!name.empty()) name += ",";
      name += std::to_string(k);
    }
  }
  return "{" + name + "}";
}

}  // namespace

int main() {
  const auto f = gen::make_figure1();

  std::cout << "=== ACL migration on the Figure 1 network (paper §5) ===\n\n";
  std::cout << "Task: clear ACLs at A1, D2; generate new ACLs at C1, C2, D1,\n"
               "preserving packet reachability.\n\n";

  // Table 3: the ACL equivalence classes.
  const topo::ConfigView view{f.topo};
  const auto classes =
      core::acl_equivalence_classes(view, f.topo.bound_slots(), f.traffic);
  std::cout << "ACL equivalence classes (Table 3):\n";
  for (const auto& cls : classes) {
    std::cout << "  traffic " << class_name(cls) << ":";
    for (const auto slot : f.topo.bound_slots()) {
      const bool permit = net::permitted_set(f.topo.acl(slot)).contains(cls);
      std::cout << "  " << f.topo.qualified_name(slot.iface) << "="
                << (permit ? "permit" : "deny");
    }
    std::cout << "\n";
  }

  // Run generate.
  smt::SmtContext smt;
  core::GenerateOptions options;
  options.universe = f.traffic;
  core::Generator generator{smt, f.topo, f.scope, options};
  core::MigrationSpec spec;
  spec.sources = f.migration_sources();
  spec.targets = f.migration_targets();
  const auto result = generator.generate(spec);

  std::cout << "\ngenerate: " << (result.success ? "success" : "FAILED") << "\n";
  std::cout << "  AECs: " << result.aec_count << " (" << result.aec_solved
            << " solved directly, " << result.dec_count
            << " dataplane equivalence classes for the rest)\n";
  std::cout << "  sequence-encoding rows: " << result.synthesis.row_count
            << ", emitted rules: " << result.synthesis.emitted_rules << "\n";
  std::cout << "  SMT queries: " << result.smt_queries << "\n";

  std::cout << "\nSynthesized ACLs (cf. Table 4b):\n";
  for (const auto slot : spec.targets) {
    std::cout << "  " << f.topo.qualified_name(slot.iface) << "-in:\n";
    for (const auto& rule : result.update.at(slot).rules()) {
      std::cout << "    " << net::to_string(rule) << "\n";
    }
  }

  // Validate: every routed path keeps its exact permitted set.
  const topo::ConfigView after{f.topo, &result.update};
  bool valid = true;
  for (const auto& path : topo::enumerate_paths(f.topo, f.scope)) {
    const auto carried = topo::forwarding_set(f.topo, path) & f.traffic;
    if (carried.is_empty()) continue;
    const bool same = (topo::path_permitted_set(view, path) & carried)
                          .equals(topo::path_permitted_set(after, path) & carried);
    std::cout << (same ? "  [ok]   " : "  [FAIL] ") << topo::to_string(f.topo, path) << "\n";
    valid = valid && same;
  }
  std::cout << (valid ? "\nmigration preserves reachability on every path\n"
                      : "\nmigration is INVALID\n");
  return valid && result.success ? 0 : 1;
}
