// Quickstart: the paper's running example (§3.2, Figure 1 + Figure 3).
//
// An operator wants to clean up the ACLs on routers C and D by moving their
// deny rules onto router A. The update looks reasonable — and silently
// breaks reachability for two traffic classes. Jinjing's check finds the
// violation, fix synthesizes the repair, and the repaired plan re-checks
// clean.
#include <iostream>

#include "core/engine.h"
#include "gen/fixtures.h"
#include "lai/parser.h"
#include "net/acl_algebra.h"
#include "lai/printer.h"
#include "topo/paths.h"

namespace {

constexpr const char* kProgram = R"(# Figure 3: the operator's intent
scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify A:1-in to A1_new, A:3-out to A3_new, C:1-in to permit_all, D:2-in to permit_all
check
fix
)";

}  // namespace

int main() {
  using namespace jinjing;

  const auto f = gen::make_figure1();

  std::cout << "=== Jinjing quickstart: the Figure 1 network ===\n\n";
  std::cout << "Devices: A, B, C, D. Traffic k means 'dst k.0.0.0/8'.\n";
  std::cout << "Paths through the scope:\n";
  for (const auto& path : topo::enumerate_paths(f.topo, f.scope)) {
    std::cout << "  " << topo::to_string(f.topo, path) << "\n";
  }

  std::cout << "\nOriginal ACLs:\n";
  for (const auto slot : f.topo.bound_slots()) {
    std::cout << "  " << f.topo.qualified_name(slot.iface) << "-"
              << topo::to_string(slot.dir) << ":\n";
    for (const auto& rule : f.topo.acl(slot).rules()) {
      std::cout << "    " << net::to_string(rule) << "\n";
    }
  }

  // The proposed (buggy) update, expressed as named ACLs + an LAI program.
  lai::AclLibrary library;
  library.emplace("A1_new", net::Acl::parse({"deny dst 1.0.0.0/8", "deny dst 2.0.0.0/8",
                                             "deny dst 6.0.0.0/8", "permit all"}));
  library.emplace("A3_new", net::Acl::parse({"deny dst 7.0.0.0/8", "permit all"}));
  library.emplace("permit_all", net::Acl::permit_all());

  std::cout << "\nLAI program:\n" << kProgram << "\n";

  core::Engine engine{f.topo};
  const auto report = engine.run_program(kProgram, library, f.traffic);

  const auto& check = *report.outcomes[0].check;
  std::cout << "check: " << (check.consistent ? "consistent" : "INCONSISTENT") << " ("
            << check.fec_count << " forwarding equivalence classes, " << check.path_count
            << " paths, " << check.smt_queries << " SMT queries)\n";
  const auto paths = topo::enumerate_paths(f.topo, f.scope);
  for (const auto& v : check.violations) {
    std::cout << "  violation: packet " << net::to_string(v.witness) << " on "
              << topo::to_string(f.topo, paths[v.path_index]) << " was "
              << (v.decision_before ? "permitted" : "denied") << ", now "
              << (v.decision_after ? "permitted" : "denied") << "\n";
    if (v.changed_slot) {
      std::cout << "    because " << f.topo.qualified_name(v.changed_slot->iface) << "-"
                << topo::to_string(v.changed_slot->dir) << " decided by '" << v.before_rule
                << "' before, '" << v.after_rule << "' after\n";
    }
  }

  const auto& fix = *report.outcomes[1].fix;
  std::cout << "fix: " << (fix.success ? "repaired" : "FAILED") << ", "
            << fix.neighborhoods.size() << " violating neighborhoods\n";
  for (const auto& n : fix.neighborhoods) {
    std::cout << "  neighborhood: packets matching '"
              << net::to_string(net::matches_for_cube(n.set.cubes().front()).front()) << "'\n";
  }
  std::cout << "fixing plan:\n";
  for (const auto& action : fix.actions) {
    for (const auto& rule : action.rules) {
      std::cout << "  " << f.topo.qualified_name(action.slot.iface) << "-"
                << topo::to_string(action.slot.dir) << ": prepend '" << net::to_string(rule)
                << "'\n";
    }
  }

  std::cout << "\nFinal (simplified) ACLs to deploy:\n";
  for (const auto& [slot, acl] : report.final_update) {
    std::cout << "  " << f.topo.qualified_name(slot.iface) << "-" << topo::to_string(slot.dir)
              << ":\n";
    if (acl.empty()) std::cout << "    (no rules — " << net::to_string(acl.default_action())
                               << " all)\n";
    for (const auto& rule : acl.rules()) std::cout << "    " << net::to_string(rule) << "\n";
  }

  // Re-verify the deployable plan.
  smt::SmtContext smt;
  core::Checker checker{smt, f.topo, f.scope};
  const bool clean = checker.check(report.final_update, f.traffic).consistent;
  std::cout << "\nre-check of the repaired plan: " << (clean ? "consistent" : "INCONSISTENT")
            << "\n";
  return clean ? 0 : 1;
}
