// Safe rollout: from verified plan to deployable push sequence.
//
// A plan that is correct *after* all pushes land can still misbehave while
// they land — pushes reach devices one at a time, in unpredictable order.
// This example repairs the §3.2 running-example update, then:
//   1. prints the per-slot diff of the repaired plan,
//   2. stages it into a two-phase push sequence whose every intermediate
//      state keeps each ACL within the union of its before/after behaviour
//      (availability-first), re-checking a worst-case interleaving with the
//      verifier,
//   3. prints the rollback plan kept on file for the change window.
#include <iostream>

#include "core/checker.h"
#include "core/deploy.h"
#include "core/fixer.h"
#include "gen/fixtures.h"
#include "topo/paths.h"

namespace {

using namespace jinjing;

std::string slot_name(const topo::Topology& topo, topo::AclSlot slot) {
  return topo.qualified_name(slot.iface) + (slot.dir == topo::Dir::In ? "-in" : "-out");
}

}  // namespace

int main() {
  const auto f = gen::make_figure1();

  std::cout << "=== Safe rollout of the repaired running-example plan ===\n\n";

  // Repair the buggy update first (as in examples/quickstart).
  smt::SmtContext smt;
  core::Fixer fixer{smt, f.topo, f.scope};
  const auto fix = fixer.fix(f.running_example_update(), f.traffic, [&] {
    std::vector<topo::AclSlot> allowed;
    for (const auto iface : {f.A1, f.A2, f.A3, f.A4, f.B1, f.B2}) {
      allowed.push_back({iface, topo::Dir::In});
      allowed.push_back({iface, topo::Dir::Out});
    }
    return allowed;
  }());
  if (!fix.success) {
    std::cout << "fix failed\n";
    return 1;
  }
  const auto& plan = fix.fixed_update;

  std::cout << "plan diff:\n" << core::describe_update(f.topo, plan) << "\n";

  const auto steps = core::staged_plan(f.topo, plan, core::StagingMode::AvailabilityFirst);
  std::cout << "staged deployment (availability-first), " << steps.size() << " pushes:\n";
  for (const auto& step : steps) {
    std::cout << "  phase " << step.phase + 1 << ": push " << slot_name(f.topo, step.slot)
              << " (" << step.acl.size() << " rules)\n";
  }

  // Adversarial replay: apply pushes one at a time (phase order, worst-case
  // within a phase is any order — we take the given one) and verify that at
  // every intermediate state, traffic permitted by BOTH endpoints still
  // flows on every path.
  std::cout << "\nverifying intermediate states:\n";
  const topo::ConfigView before_view{f.topo};
  const topo::ConfigView after_view{f.topo, &plan};
  const auto paths = topo::enumerate_paths(f.topo, f.scope);

  topo::AclUpdate state;
  bool all_safe = true;
  for (std::size_t pushed = 0; pushed <= steps.size(); ++pushed) {
    if (pushed > 0) state.insert_or_assign(steps[pushed - 1].slot, steps[pushed - 1].acl);
    const topo::ConfigView current{f.topo, &state};
    bool safe = true;
    for (const auto& path : paths) {
      const auto carried = topo::forwarding_set(f.topo, path) & f.traffic;
      if (carried.is_empty()) continue;
      const auto must_flow = topo::path_permitted_set(before_view, path) &
                             topo::path_permitted_set(after_view, path) & carried;
      safe = safe && topo::path_permitted_set(current, path).contains(must_flow);
    }
    std::cout << "  after " << pushed << " pushes: "
              << (safe ? "no always-permitted traffic dropped" : "TRANSIENT OUTAGE") << "\n";
    all_safe = all_safe && safe;
  }

  // The rollback restores today's ACLs; diffing it against the live
  // topology is a no-op by construction, so list what it would push.
  std::cout << "\nrollback plan (kept for the change window):\n";
  for (const auto& [slot, acl] : core::rollback_update(f.topo, plan)) {
    std::cout << "  restore " << slot_name(f.topo, slot) << " (" << acl.size() << " rules)\n";
  }

  std::cout << (all_safe ? "\nrollout is transient-safe\n" : "\nrollout is UNSAFE\n");
  return all_safe ? 0 : 1;
}
