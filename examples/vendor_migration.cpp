// The vendor-config pipeline (§7 deployment challenges): ingest a router's
// IOS-style ACL, compare it semantically against the intended canonical
// configuration, and verify a replacement plan on the live network model —
// the "different configuration formats" path a production deployment hits
// before any verification can start.
#include <iostream>

#include "config/acl_format.h"
#include "core/checker.h"
#include "core/deploy.h"
#include "gen/fixtures.h"
#include "net/acl_algebra.h"

namespace {

using namespace jinjing;

// What the (fictional) vendor device actually runs on D2 — an IOS-style
// dump whose third line carries a typo'd wildcard: 2.0.0.0/9 instead of
// 2.0.0.0/8.
constexpr const char* kDeviceDump = R"(
! router D, interface 2, inbound
access-list 120 deny ip any 1.0.0.0 0.255.255.255
access-list 120 deny ip any 2.0.0.0 0.127.255.255
access-list 120 permit ip any any
)";

// What the operator's source of truth says D2 should run.
constexpr const char* kIntended = R"(
deny dst 1.0.0.0/8
deny dst 2.0.0.0/8
permit all
)";

}  // namespace

int main() {
  const auto f = gen::make_figure1();

  std::cout << "=== Vendor config ingestion & drift detection ===\n\n";

  const auto device_acl = config::parse_acl_auto(kDeviceDump);
  const auto intended_acl = config::parse_acl_auto(kIntended);

  std::cout << "device dump (IOS dialect), canonicalized:\n";
  for (const auto& rule : device_acl.rules()) {
    std::cout << "  " << net::to_string(rule) << "\n";
  }

  // Semantic drift check (not a text diff).
  if (net::equivalent(device_acl, intended_acl)) {
    std::cout << "\ndevice matches the intended configuration\n";
    return 0;
  }
  const auto leaked = net::permitted_set(device_acl) - net::permitted_set(intended_acl);
  std::cout << "\nDRIFT: the device permits traffic the intent denies, e.g. "
            << net::to_string(leaked.sample()) << "\n";

  // Propose restoring the intended ACL and verify the push network-wide.
  topo::AclUpdate restore;
  restore.emplace(topo::AclSlot{f.D2, topo::Dir::In}, intended_acl);

  // The network model currently runs the *device's* ACL: rebind first.
  auto live = f.topo;
  live.bind_acl(f.D2, topo::Dir::In, device_acl);

  smt::SmtContext smt;
  core::Checker checker{smt, live, f.scope};
  const auto result = checker.check(restore, f.traffic);
  std::cout << "\nrestoring the intended ACL is "
            << (result.consistent ? "reachability-neutral" : "a reachability change") << "\n";
  for (const auto& v : result.violations) {
    std::cout << "  affected: " << net::to_string(v.witness) << " ("
              << (v.decision_before ? "permitted" : "denied") << " -> "
              << (v.decision_after ? "permitted" : "denied") << ")";
    if (v.changed_slot) {
      std::cout << " at " << live.qualified_name(v.changed_slot->iface) << ": '"
                << v.before_rule << "' -> '" << v.after_rule << "'";
    }
    std::cout << "\n";
  }

  // The "change" is exactly the drift being closed: 2.128/9 gets denied
  // again. Ship it with a staged plan + rollback.
  const auto steps = core::staged_plan(live, restore, core::StagingMode::SecurityFirst);
  std::cout << "\nsecurity-first staged plan: " << steps.size() << " push(es)\n";
  std::cout << "rollback captures " << core::rollback_update(live, restore).size()
            << " slot(s)\n";

  // Emit the corrected config back in the device's dialect.
  std::cout << "\ncorrected device config:\n" << config::print_acl_ios(intended_acl, 120);
  return result.consistent ? 0 : 2;  // 2 = drift closure changes reachability (expected)
}
